// SimNetwork delivery semantics, taps, injection, logging, reordering.
#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::net {
namespace {

wire::Envelope env(wire::Label label, const std::string& from,
                   const std::string& to, std::string body = "") {
  return wire::Envelope{label, from, to, to_bytes(body)};
}

TEST(SimNetwork, DeliversInFifoOrder) {
  SimNetwork net;
  std::vector<std::string> got;
  net.attach("b", [&](const wire::Envelope& e) {
    got.push_back(to_string(e.body));
  });
  net.send("b", env(wire::Label::GroupData, "a", "b", "1"));
  net.send("b", env(wire::Label::GroupData, "a", "b", "2"));
  net.send("b", env(wire::Label::GroupData, "a", "b", "3"));
  EXPECT_EQ(net.run(), 3u);
  EXPECT_EQ(got, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(SimNetwork, UnroutablePacketsCounted) {
  SimNetwork net;
  net.send("ghost", env(wire::Label::Ack, "a", "ghost"));
  EXPECT_EQ(net.run(), 1u);
  EXPECT_EQ(net.packets_unroutable(), 1u);
}

TEST(SimNetwork, TapCanDropPackets) {
  SimNetwork net;
  int delivered = 0;
  net.attach("b", [&](const wire::Envelope&) { ++delivered; });
  net.set_tap([](const Packet& p) {
    return p.envelope.sender == "evil" ? TapVerdict::drop
                                       : TapVerdict::deliver;
  });
  net.send("b", env(wire::Label::Ack, "evil", "b"));
  net.send("b", env(wire::Label::Ack, "good", "b"));
  net.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.packets_dropped_by_tap(), 1u);
  // Dropped packets still appear in the log (they were on the wire).
  EXPECT_EQ(net.log().size(), 2u);
}

TEST(SimNetwork, InjectBypassesTap) {
  SimNetwork net;
  int delivered = 0;
  net.attach("b", [&](const wire::Envelope&) { ++delivered; });
  net.set_tap([](const Packet&) { return TapVerdict::drop; });
  net.inject("b", env(wire::Label::Ack, "evil", "b"));
  net.run();
  EXPECT_EQ(delivered, 1);
}

TEST(SimNetwork, LogRecordsEverything) {
  SimNetwork net;
  net.attach("b", [](const wire::Envelope&) {});
  net.send("b", env(wire::Label::AuthInitReq, "a", "b", "x"));
  net.inject("b", env(wire::Label::Ack, "e", "b", "y"));
  ASSERT_EQ(net.log().size(), 2u);
  EXPECT_EQ(net.log()[0].envelope.label, wire::Label::AuthInitReq);
  EXPECT_EQ(net.log()[1].envelope.label, wire::Label::Ack);
  EXPECT_LT(net.log()[0].seq, net.log()[1].seq);
}

TEST(SimNetwork, HandlerMaySendDuringDelivery) {
  SimNetwork net;
  std::vector<std::string> order;
  net.attach("a", [&](const wire::Envelope& e) {
    order.push_back("a:" + to_string(e.body));
  });
  net.attach("b", [&](const wire::Envelope& e) {
    order.push_back("b:" + to_string(e.body));
    net.send("a", env(wire::Label::Ack, "b", "a", "reply"));
  });
  net.send("b", env(wire::Label::AdminMsg, "a", "b", "ping"));
  net.run();
  EXPECT_EQ(order, (std::vector<std::string>{"b:ping", "a:reply"}));
}

TEST(SimNetwork, DetachStopsDelivery) {
  SimNetwork net;
  int delivered = 0;
  net.attach("b", [&](const wire::Envelope&) { ++delivered; });
  net.send("b", env(wire::Label::Ack, "a", "b"));
  net.detach("b");
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.packets_unroutable(), 1u);
}

TEST(SimNetwork, RunRespectsMaxSteps) {
  SimNetwork net;
  // a and b ping-pong forever.
  net.attach("a", [&](const wire::Envelope&) {
    net.send("b", env(wire::Label::Ack, "a", "b"));
  });
  net.attach("b", [&](const wire::Envelope&) {
    net.send("a", env(wire::Label::Ack, "b", "a"));
  });
  net.send("a", env(wire::Label::Ack, "b", "a"));
  EXPECT_EQ(net.run(100), 100u);
  EXPECT_GT(net.queue_size(), 0u);
}

TEST(SimNetwork, DuplicateVerdictDeliversTwice) {
  SimNetwork net;
  std::vector<std::string> got;
  net.attach("b", [&](const wire::Envelope& e) {
    got.push_back(to_string(e.body));
  });
  net.set_tap([](const Packet& p) {
    return p.envelope.sender == "noisy" ? TapVerdict::duplicate
                                        : TapVerdict::deliver;
  });
  net.send("b", env(wire::Label::GroupData, "noisy", "b", "dup"));
  net.send("b", env(wire::Label::GroupData, "quiet", "b", "one"));
  net.run();
  EXPECT_EQ(got, (std::vector<std::string>{"dup", "dup", "one"}));
  EXPECT_EQ(net.packets_duplicated_by_tap(), 1u);
  // Both copies were really on the wire: the log shows them.
  EXPECT_EQ(net.log().size(), 3u);
}

TEST(SimNetwork, DelayedPacketReordersPastYoungerTraffic) {
  SimNetwork net;
  std::vector<std::string> got;
  net.attach("b", [&](const wire::Envelope& e) {
    got.push_back(to_string(e.body));
  });
  net.set_tap([](const Packet& p) {
    if (to_string(p.envelope.body) == "late")
      return TapDecision{TapVerdict::delay, 3};
    return TapDecision{TapVerdict::deliver};
  });
  net.send("b", env(wire::Label::GroupData, "a", "b", "late"));
  net.send("b", env(wire::Label::GroupData, "a", "b", "1"));
  net.send("b", env(wire::Label::GroupData, "a", "b", "2"));
  EXPECT_EQ(net.held_size(), 1u);
  net.run();
  // Sent first, delivered last: delay past younger packets IS reordering.
  EXPECT_EQ(got, (std::vector<std::string>{"1", "2", "late"}));
  EXPECT_EQ(net.packets_delayed_by_tap(), 1u);
  EXPECT_EQ(net.held_size(), 0u);
}

TEST(SimNetwork, DelayCannotDeadlockQuiescentNetwork) {
  // Everything delayed, nothing queued: run() must fast-forward to the
  // earliest release instead of reporting quiescence with traffic in limbo.
  SimNetwork net;
  int delivered = 0;
  net.attach("b", [&](const wire::Envelope&) { ++delivered; });
  net.set_tap([](const Packet&) { return TapDecision{TapVerdict::delay, 7}; });
  for (int i = 0; i < 3; ++i)
    net.send("b", env(wire::Label::GroupData, "a", "b", std::to_string(i)));
  EXPECT_EQ(net.queue_size(), 0u);
  EXPECT_EQ(net.held_size(), 3u);
  EXPECT_EQ(net.run(), 3u);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(net.held_size(), 0u);
}

TEST(SimNetwork, ShufflePreservesPacketSet) {
  SimNetwork net;
  std::multiset<std::string> got;
  net.attach("b", [&](const wire::Envelope& e) {
    got.insert(to_string(e.body));
  });
  for (int i = 0; i < 20; ++i)
    net.send("b", env(wire::Label::GroupData, "a", "b", std::to_string(i)));
  DeterministicRng rng(99);
  net.shuffle(rng);
  net.run();
  EXPECT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got.count(std::to_string(i)), 1u);
}

}  // namespace
}  // namespace enclaves::net
