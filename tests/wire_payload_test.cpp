// Envelope, admin-body, improved-protocol and legacy payload encoders:
// round trips, type confusion resistance, malformed-input rejection.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/admin_body.h"
#include "wire/envelope.h"
#include "wire/legacy_payloads.h"
#include "wire/payloads.h"

namespace enclaves::wire {
namespace {

DeterministicRng& rng() {
  static DeterministicRng r(1234);
  return r;
}

crypto::ProtocolNonce nonce() { return crypto::ProtocolNonce::random(rng()); }
crypto::SessionKey skey() { return crypto::SessionKey::random(rng()); }
crypto::GroupKey gkey() { return crypto::GroupKey::random(rng()); }

TEST(Envelope, RoundTrip) {
  Envelope e{Label::AdminMsg, "L", "alice", to_bytes("payload")};
  auto back = decode_envelope(encode(e));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, e);
}

TEST(Envelope, EmptyFieldsRoundTrip) {
  Envelope e{Label::ReqClose, "", "", {}};
  auto back = decode_envelope(encode(e));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, e);
}

TEST(Envelope, UnknownLabelRejected) {
  Envelope e{Label::AuthInitReq, "a", "b", {}};
  Bytes raw = encode(e);
  raw[0] = 0xEE;  // not a defined label
  auto back = decode_envelope(raw);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.code(), Errc::malformed);
}

TEST(Envelope, TrailingGarbageRejected) {
  Bytes raw = encode(Envelope{Label::Ack, "a", "b", to_bytes("x")});
  raw.push_back(0x00);
  EXPECT_FALSE(decode_envelope(raw).ok());
}

TEST(Envelope, TruncationAnywhereRejectedCleanly) {
  Bytes raw = encode(Envelope{Label::AuthKeyDist, "leader", "member",
                              to_bytes("some body bytes")});
  for (std::size_t len = 0; len < raw.size(); ++len) {
    auto r = decode_envelope({raw.data(), len});
    EXPECT_FALSE(r.ok()) << "len=" << len;
  }
}

TEST(Envelope, DescribeMentionsParties) {
  std::string d = describe(Envelope{Label::AdminMsg, "L", "bob", {1, 2, 3}});
  EXPECT_NE(d.find("AdminMsg"), std::string::npos);
  EXPECT_NE(d.find("L->bob"), std::string::npos);
}

TEST(Envelope, AllLabelsHaveNames) {
  for (std::uint8_t raw = 0; raw < 255; ++raw) {
    if (!is_known_label(raw)) continue;
    EXPECT_STRNE(label_name(static_cast<Label>(raw)), "?");
  }
}

TEST(AdminBody, AllVariantsRoundTrip) {
  std::vector<AdminBody> bodies = {
      NewGroupKey{gkey(), 42},
      MemberJoined{"alice"},
      MemberLeft{"bob"},
      MemberList{{"a", "b", "c"}},
      Notice{"hello group"},
      Expelled{"policy violation"},
  };
  for (const auto& b : bodies) {
    auto back = decode_admin_body(encode(b));
    ASSERT_TRUE(back.ok()) << describe(b);
    EXPECT_EQ(*back, b) << describe(b);
  }
}

TEST(AdminBody, EmptyMemberListRoundTrip) {
  AdminBody b = MemberList{{}};
  auto back = decode_admin_body(encode(b));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(AdminBody, UnknownTagRejected) {
  Bytes raw = {0x77};
  EXPECT_FALSE(decode_admin_body(raw).ok());
}

TEST(AdminBody, HugeMemberCountRejected) {
  Bytes raw = {0x04, 0xFF, 0xFF, 0xFF, 0xFF};  // member_list, count=2^32-1
  auto r = decode_admin_body(raw);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::oversized);
}

TEST(AdminBody, DescribeIsInformative) {
  EXPECT_EQ(describe(AdminBody(MemberJoined{"zoe"})), "MemberJoined(zoe)");
  EXPECT_EQ(describe(AdminBody(NewGroupKey{gkey(), 7})),
            "NewGroupKey(epoch=7)");
  EXPECT_EQ(describe(AdminBody(Expelled{"spam"})), "Expelled(spam)");
}

TEST(Payloads, AuthInitRoundTrip) {
  AuthInitPayload p{"alice", "L", nonce()};
  auto back = decode_auth_init(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Payloads, AuthKeyDistRoundTrip) {
  AuthKeyDistPayload p{"L", "alice", nonce(), nonce(), skey()};
  auto back = decode_auth_key_dist(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Payloads, AuthAckRoundTrip) {
  AuthAckPayload p{nonce(), nonce()};
  auto back = decode_auth_ack(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Payloads, AdminRoundTripAllBodies) {
  std::vector<AdminBody> bodies = {NewGroupKey{gkey(), 1},
                                   MemberJoined{"x"}, Notice{"n"}};
  for (const auto& b : bodies) {
    AdminPayload p{"L", "alice", nonce(), nonce(), b};
    auto back = decode_admin(encode(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
}

TEST(Payloads, AckRoundTrip) {
  AckPayload p{"alice", "L", nonce(), nonce()};
  auto back = decode_ack(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Payloads, ReqCloseRoundTrip) {
  ReqClosePayload p{"alice", "L"};
  auto back = decode_req_close(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Payloads, GroupDataRoundTrip) {
  GroupDataPayload p{"alice", 3, 17, to_bytes("chat line")};
  auto back = decode_group_data(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

// Cross-decoding: a payload of one type must never decode as another, even
// though both could be sealed under the same key.
TEST(Payloads, CrossTypeDecodingRejected) {
  Bytes init = encode(AuthInitPayload{"a", "l", nonce()});
  EXPECT_FALSE(decode_auth_key_dist(init).ok());
  EXPECT_FALSE(decode_auth_ack(init).ok());
  EXPECT_FALSE(decode_admin(init).ok());
  EXPECT_FALSE(decode_ack(init).ok());
  EXPECT_FALSE(decode_req_close(init).ok());
  EXPECT_FALSE(decode_group_data(init).ok());

  Bytes ack = encode(AckPayload{"a", "l", nonce(), nonce()});
  EXPECT_FALSE(decode_auth_ack(ack).ok());
  EXPECT_FALSE(decode_req_close(ack).ok());
}

TEST(Payloads, TruncationRejected) {
  Bytes raw = encode(AuthKeyDistPayload{"L", "alice", nonce(), nonce(),
                                        skey()});
  for (std::size_t len = 0; len < raw.size(); ++len) {
    EXPECT_FALSE(decode_auth_key_dist({raw.data(), len}).ok())
        << "len=" << len;
  }
}

TEST(LegacyPayloads, AuthInitRoundTrip) {
  LegacyAuthInitPayload p{"alice", "L", nonce()};
  auto back = decode_legacy_auth_init(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(LegacyPayloads, AuthReplyRoundTrip) {
  LegacyAuthReplyPayload p{"L",    "alice",         nonce(), nonce(),
                           skey(), rng().bytes(16), gkey(),  5};
  auto back = decode_legacy_auth_reply(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(LegacyPayloads, AuthReplyBadIvLengthRejected) {
  LegacyAuthReplyPayload p{"L",    "alice",        nonce(), nonce(),
                           skey(), rng().bytes(8), gkey(),  5};
  EXPECT_FALSE(decode_legacy_auth_reply(encode(p)).ok());
}

TEST(LegacyPayloads, NewKeyRoundTrip) {
  LegacyNewKeyPayload p{gkey(), rng().bytes(16), 9};
  auto back = decode_legacy_new_key(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(LegacyPayloads, NewKeyAckRoundTrip) {
  LegacyNewKeyAckPayload p{gkey()};
  auto back = decode_legacy_new_key_ack(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(LegacyPayloads, MembershipRoundTrip) {
  LegacyMembershipPayload p{"mallory"};
  auto back = decode_legacy_membership(encode(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(LegacyPayloads, CrossTypeDecodingRejected) {
  Bytes nk = encode(LegacyNewKeyPayload{gkey(), rng().bytes(16), 1});
  EXPECT_FALSE(decode_legacy_membership(nk).ok());
  EXPECT_FALSE(decode_legacy_auth_ack(nk).ok());
  // And improved-protocol decoders reject legacy payloads outright.
  EXPECT_FALSE(decode_admin(nk).ok());
}

}  // namespace
}  // namespace enclaves::wire
