// Chaos suite: the paper's Section 5 properties as executable invariants
// under seeded adversarial network schedules.
//
// Every test drives full group lifecycles (join, app traffic, rekey,
// partition+heal, expulsion, leader crash-restart) through a FaultInjector
// that drops, duplicates, delays/reorders and partitions traffic, all
// reproducible from a single seed. Tracked invariants, per member, across
// the WHOLE run (sessions, expulsions and restarts included):
//
//   in-order / no-duplicate — numbered admin notices arrive in strictly
//     increasing order; delivered data sequences per origin strictly
//     increase (within an epoch);
//   no stale group key — accepted epochs strictly increase, even across a
//     leader restart (epoch floor from the crash snapshot), and data sealed
//     under a pre-restart key is rejected by everyone;
//   view convergence — once the network quiesces, every member's view
//     equals the leader's membership.
//
// A failing seed reproduces deterministically: the fault schedule is a pure
// function of (plan, seed) and all protocol randomness flows from the same
// seeded DeterministicRng.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "core/registry.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "wire/payloads.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour (the engine itself, before the chaos runs).

wire::Envelope plain_env(const std::string& from, const std::string& to,
                         const std::string& body) {
  return wire::Envelope{wire::Label::GroupData, from, to, to_bytes(body)};
}

TEST(FaultInjector, ReproducibleFromSeed) {
  SCOPED_TRACE("seed=99");
  net::FaultPlan plan;
  plan.faults = {30, 20, 20, 4};
  auto run_schedule = [&plan] {
    net::FaultInjector inj(plan, 99);
    std::vector<int> verdicts;
    for (int i = 0; i < 200; ++i) {
      auto d = inj.decide(net::Packet{static_cast<std::uint64_t>(i), "b",
                                      plain_env("a", "b", "x")});
      verdicts.push_back(static_cast<int>(d.verdict) * 100 +
                         static_cast<int>(d.delay_steps));
    }
    return verdicts;
  };
  EXPECT_EQ(run_schedule(), run_schedule());
}

TEST(FaultInjector, HonoursPerLinkOverrides) {
  SCOPED_TRACE("seed=1");
  net::FaultPlan plan;
  plan.faults = {0, 0, 0, 4};                  // default: faultless
  plan.per_link[{"a", "b"}] = {100, 0, 0, 4};  // a->b: always dropped
  net::FaultInjector inj(plan, 1);
  net::SimNetwork net;
  int b_got = 0, c_got = 0;
  net.attach("b", [&](const wire::Envelope&) { ++b_got; });
  net.attach("c", [&](const wire::Envelope&) { ++c_got; });
  net.set_tap(inj.tap());
  for (int i = 0; i < 20; ++i) {
    net.send("b", plain_env("a", "b", "x"));
    net.send("c", plain_env("a", "c", "x"));
  }
  net.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(c_got, 20);
  EXPECT_EQ(inj.stats().dropped, 20u);
}

TEST(FaultInjector, ScheduledPartitionCutsAndHeals) {
  SCOPED_TRACE("seed=7");
  net::FaultPlan plan;
  plan.partitions.push_back({/*from_packet=*/5, /*until_packet=*/10, {"b"}});
  net::FaultInjector inj(plan, 7);
  net::SimNetwork net;
  int delivered = 0;
  net.attach("b", [&](const wire::Envelope&) { ++delivered; });
  net.set_tap(inj.tap());
  for (int i = 0; i < 15; ++i) net.send("b", plain_env("a", "b", "x"));
  net.run();
  EXPECT_EQ(delivered, 10);  // packets 5..9 died in the partition window
  EXPECT_EQ(inj.stats().partition_dropped, 5u);
}

TEST(FaultInjector, ManualPartitionOnlyCutsCrossingTraffic) {
  SCOPED_TRACE("seed=3");
  net::FaultPlan plan;
  net::FaultInjector inj(plan, 3);
  inj.partition({"a", "b"});
  net::SimNetwork net;
  std::map<std::string, int> got;
  for (const char* id : {"a", "b", "c", "d"})
    net.attach(id, [&got, id](const wire::Envelope&) { ++got[id]; });
  net.set_tap(inj.tap());
  net.send("b", plain_env("a", "b", "island-internal"));
  net.send("d", plain_env("c", "d", "mainland-internal"));
  net.send("c", plain_env("a", "c", "crossing"));
  net.run();
  EXPECT_EQ(got["b"], 1);
  EXPECT_EQ(got["d"], 1);
  EXPECT_EQ(got["c"], 0);
  inj.heal();
  net.send("c", plain_env("a", "c", "after heal"));
  net.run();
  EXPECT_EQ(got["c"], 1);
}

// ---------------------------------------------------------------------------
// The chaos world.

struct Tracker {
  std::vector<std::uint64_t> notice_nums;  // numbered notices, arrival order
  std::vector<std::uint64_t> epochs;       // accepted epochs, arrival order
  std::map<std::string, std::vector<std::uint64_t>> data_seqs;  // per origin
  std::uint64_t hb = 0;
};

struct ChaosWorld {
  static constexpr int kMembers = 4;

  ChaosWorld(std::uint64_t seed, net::FaultPlan plan)
      : rng(seed), injector(std::move(plan), seed ^ 0xFA17) {
    net.set_tap(injector.tap());
    make_leader(/*snapshot=*/nullptr);
    for (int i = 0; i < kMembers; ++i) {
      const std::string id = member_id(i);
      auto pa = crypto::LongTermKey::random(rng);
      EXPECT_TRUE(leader->register_member(id, pa).ok());
      auto m = std::make_unique<Member>(id, "L", pa, rng);
      m->set_send([this](const std::string& to, wire::Envelope e) {
        net.send(to, std::move(e));
      });
      m->set_retry_policy(RetryPolicy::exponential(1, 8, /*jitter=*/2));
      m->set_close_retry_policy(RetryPolicy::exponential(1, 4, 1, 5));
      m->enable_auto_rejoin(RetryPolicy::exponential(2, 16, 3));
      m->set_suspect_after(60);
      Tracker* tr = &trackers[id];
      m->set_event_handler([tr](const GroupEvent& ev) {
        if (const auto* a = std::get_if<AdminAccepted>(&ev)) {
          if (const auto* n = std::get_if<wire::Notice>(&a->body)) {
            if (n->text == "hb") {
              ++tr->hb;
            } else if (n->text.size() > 1 && n->text[0] == 'n') {
              tr->notice_nums.push_back(
                  std::stoull(n->text.substr(1)));
            }
          }
        } else if (const auto* e2 = std::get_if<EpochChanged>(&ev)) {
          tr->epochs.push_back(e2->epoch);
        } else if (const auto* d = std::get_if<DataReceived>(&ev)) {
          const std::string s = enclaves::to_string(d->payload);
          auto at = s.find('#');
          if (at != std::string::npos)
            tr->data_seqs[d->origin].push_back(
                std::stoull(s.substr(at + 1)));
        }
      });
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  static std::string member_id(int i) { return "m" + std::to_string(i); }

  void make_leader(const LeaderSnapshot* snapshot) {
    LeaderConfig config;
    config.id = "L";
    config.rekey = RekeyPolicy::strict();
    config.retry = RetryPolicy::exponential(1, 8, /*jitter=*/2);
    config.auto_expel_attempts = 8;
    leader = std::make_unique<Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    if (snapshot) snapshot->install(*leader);
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
  }

  // One time step: heartbeat every 8 steps, drain, fire all timers, drain.
  void step() {
    if (leader && step_count % 8 == 0) leader->probe_liveness();
    net.run(1u << 16);
    if (leader) leader->tick();
    for (auto& [id, m] : members) m->tick();
    net.run(1u << 16);
    ++step_count;
  }

  bool converged() const {
    if (!leader) return false;
    if (leader->member_count() != static_cast<std::size_t>(kMembers))
      return false;
    const auto expect = leader->members();
    for (const auto& [id, m] : members) {
      const LeaderSession* s = leader->session(id);
      if (!s || s->state() != LeaderSession::State::connected ||
          s->queue_depth() != 0)
        return false;
      if (!m->connected() || m->epoch() != leader->epoch()) return false;
      if (m->view() != expect) return false;
    }
    return true;
  }

  // Drives steps until converged (faults stay on the whole time). Returns
  // false if the bound was hit.
  bool settle(int max_steps = 3000) {
    for (int t = 0; t < max_steps; ++t) {
      if (converged() && net.queue_size() == 0 && net.held_size() == 0)
        return true;
      step();
    }
    return converged();
  }

  void broadcast_numbered(int count) {
    for (int i = 0; i < count; ++i) {
      leader->broadcast_notice("n" + std::to_string(notice_counter++));
      step();
    }
  }

  // Observability sinks live for the whole world: every chaos run records
  // the full metrics + trace history, and the invariant tests below
  // cross-check them against the injector's fault schedule. Declared first
  // so the RAII sinks attach before any traffic and detach last.
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink{metrics};
  obs::ScopedTraceSink trace_sink{trace};
  obs::ScopedSecurityLedger ledger_sink{ledger};

  net::SimNetwork net;
  DeterministicRng rng;
  net::FaultInjector injector;
  std::unique_ptr<Leader> leader;
  std::map<std::string, std::unique_ptr<Member>> members;
  std::map<std::string, Tracker> trackers;
  std::uint64_t step_count = 0;
  std::uint64_t notice_counter = 0;
};

net::FaultPlan plan_for_seed(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.faults.drop_pct = static_cast<std::uint32_t>((seed * 7) % 31);  // <=30%
  plan.faults.duplicate_pct = static_cast<std::uint32_t>((seed * 3) % 16);
  plan.faults.delay_pct = static_cast<std::uint32_t>((seed * 5) % 21);
  plan.faults.max_delay_steps = 1 + static_cast<std::uint32_t>(seed % 6);
  return plan;
}

void assert_strictly_increasing(const std::vector<std::uint64_t>& xs,
                                const std::string& what) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    ASSERT_LT(xs[i - 1], xs[i])
        << what << " out of order / duplicated at index " << i;
  }
}

// The flagship: 50 seeds, each a full adversarial lifecycle with loss,
// duplication, delay/reorder, one partition+heal, and one leader
// crash-restart, with every Section 5 invariant asserted at the end.
class ChaosLifecycle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosLifecycle, InvariantsHoldUnderSeededFaultSchedule) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ChaosWorld w(seed, plan_for_seed(seed));

  // Lifecycle runs only assert end-state invariants, never the raw trace,
  // so they double as coverage for the bounded ring-buffer mode: eviction
  // of old events must not disturb any protocol behaviour.
  w.trace.set_capacity(4096);

  // Phase 1: everyone joins through the fault storm.
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle()) << "join phase did not converge, seed=" << seed;

  // Phase 2: numbered admin traffic + app data under continuous faults.
  w.broadcast_numbered(5);
  for (int i = 0; i < 12; ++i) {
    auto& m = *w.members[ChaosWorld::member_id(i % ChaosWorld::kMembers)];
    if (m.connected() && m.has_group_key())
      (void)m.send_data(to_bytes("d" + std::to_string(i) + "#" +
                                 std::to_string(i)));
    w.step();
  }

  // Phase 3: partition one member away, let the leader degrade gracefully
  // (suspect -> backoff -> expel), then heal; auto-rejoin brings it back.
  w.injector.partition({ChaosWorld::member_id(2)});
  for (int t = 0; t < 60; ++t) w.step();
  w.injector.heal();
  ASSERT_TRUE(w.settle()) << "post-heal convergence failed, seed=" << seed;
  w.broadcast_numbered(3);
  ASSERT_TRUE(w.settle()) << "notice fanout failed, seed=" << seed;

  // Phase 4: leader crash-restart from its snapshot. Members suspect the
  // silence and rejoin by themselves; the epoch floor keeps keys fresh.
  const crypto::GroupKey old_kg = w.leader->group_key();
  const std::uint64_t old_epoch = w.leader->epoch();
  const Bytes snapshot_blob =
      w.leader->snapshot().serialize(to_bytes("chaos-storage-key"));
  w.leader.reset();
  w.net.detach("L");
  for (int t = 0; t < 80; ++t) w.step();  // downtime: suspicion kicks in

  auto restored = LeaderSnapshot::deserialize(snapshot_blob,
                                              to_bytes("chaos-storage-key"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->registry.size(),
            static_cast<std::size_t>(ChaosWorld::kMembers));
  w.make_leader(&*restored);
  ASSERT_TRUE(w.settle(4000)) << "post-restart convergence failed, seed="
                              << seed;
  EXPECT_GT(w.leader->epoch(), old_epoch)
      << "epoch floor must survive the crash";
  w.broadcast_numbered(3);
  ASSERT_TRUE(w.settle()) << "post-restart fanout failed, seed=" << seed;

  // Stale-key probe: data sealed under the pre-crash group key must be
  // rejected by the leader and every member.
  DeterministicRng stale_rng(seed ^ 0x57A1E);
  const std::string origin = ChaosWorld::member_id(0);
  wire::GroupDataPayload stale{origin, old_epoch, 10'000, to_bytes("stale")};
  auto stale_env = wire::make_sealed(crypto::default_aead(), old_kg.view(),
                                     stale_rng, wire::Label::GroupData,
                                     origin, wire::kGroupRecipient,
                                     wire::encode(stale));
  const std::uint64_t leader_rejects_before = w.leader->rejected_inputs();
  std::map<std::string, std::uint64_t> member_rejects_before;
  for (auto& [id, m] : w.members)
    member_rejects_before[id] = m->data_rejects();
  w.net.inject("L", stale_env);
  for (auto& [id, m] : w.members) w.net.inject(id, stale_env);
  w.net.run();
  EXPECT_GT(w.leader->rejected_inputs(), leader_rejects_before)
      << "leader accepted pre-crash-keyed data";
  for (auto& [id, m] : w.members) {
    EXPECT_GT(m->data_rejects(), member_rejects_before[id])
        << id << " accepted pre-crash-keyed data";
  }

  // Section 5 invariants over the whole run.
  const auto final_view = w.leader->members();
  for (auto& [id, m] : w.members) {
    EXPECT_TRUE(m->connected()) << id;
    EXPECT_EQ(m->epoch(), w.leader->epoch()) << id;
    EXPECT_EQ(m->view(), final_view) << id << " view diverged";
    const Tracker& tr = w.trackers[id];
    assert_strictly_increasing(tr.notice_nums, id + " notices");
    assert_strictly_increasing(tr.epochs, id + " epochs");
    for (const auto& [origin2, seqs] : tr.data_seqs)
      assert_strictly_increasing(seqs, id + " data from " + origin2);
    EXPECT_GT(tr.hb, 0u) << id << " never saw a heartbeat";
  }

  // Ring-buffer accounting: the cap held, and every eviction was counted.
  EXPECT_LE(w.trace.size(), 4096u);
  if (w.trace.dropped_events() > 0) {
    EXPECT_EQ(w.trace.size(), 4096u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosLifecycle,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Metrics invariants: the observability layer's counters and traces must
// reconcile with the injected fault schedule, for every seed.
//
// The timer-covered labels are the stop-and-wait exchanges the protocol
// retransmits: AuthInitReq (member join retry), AuthKeyDist (leader handshake
// retry), AdminMsg (leader admin retry). Every injected drop of one of those
// is part of an exchange that either completed (so at least one later send —
// a counted retransmit — got through, or a duplicate was re-answered) or was
// abandoned (counted at expulsion / join exhaustion). Fire-and-forget labels
// (GroupData, Ack, AuthAckKey, ReqClose) are excluded: dropping them is paid
// for by the peer's retransmit of the *other* half of the exchange.
class ChaosMetricsInvariants
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosMetricsInvariants, CountersReconcileWithFaultSchedule) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ChaosWorld w(seed, plan_for_seed(seed));

  // A crash-free lifecycle: join storm, admin + data traffic, partition and
  // heal. (A leader crash forgets in-flight exchanges without counting an
  // abandonment, so the drop/retransmit ledger below only balances for a
  // crash-free run; ChaosLifecycle covers the crash path.)
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle()) << "join phase did not converge, seed=" << seed;
  w.broadcast_numbered(4);
  for (int i = 0; i < 8; ++i) {
    auto& m = *w.members[ChaosWorld::member_id(i % ChaosWorld::kMembers)];
    if (m.connected() && m.has_group_key())
      (void)m.send_data(to_bytes("d#" + std::to_string(i)));
    w.step();
  }
  w.injector.partition({ChaosWorld::member_id(1)});
  for (int t = 0; t < 60; ++t) w.step();
  w.injector.heal();
  ASSERT_TRUE(w.settle(4000)) << "post-heal convergence failed, seed="
                              << seed;

  const auto events = w.trace.events();

  // 1. The fault-injector's own statistics and its metrics/trace output are
  //    three views of one schedule; they must agree exactly.
  const auto& stats = w.injector.stats();
  EXPECT_EQ(w.metrics.counter("net", "fault", "fault_drops_total"),
            stats.dropped);
  EXPECT_EQ(w.metrics.counter("net", "fault", "fault_partition_drops_total"),
            stats.partition_dropped);
  EXPECT_EQ(w.metrics.counter("net", "fault", "fault_duplicates_total"),
            stats.duplicated);
  EXPECT_EQ(w.metrics.counter("net", "fault", "fault_delays_total"),
            stats.delayed);
  EXPECT_EQ(w.metrics.counter("net", "sim", "packets_dropped_total"),
            stats.dropped + stats.partition_dropped);
  std::uint64_t drop_events = 0;
  for (const auto& e : events)
    if (e.kind == obs::TraceKind::fault_drop) ++drop_events;
  EXPECT_EQ(drop_events, stats.dropped + stats.partition_dropped);

  // 2. Retransmission ledger: every injected drop of a timer-covered label
  //    is answered by a counted retransmit, re-answer, or abandonment.
  const std::set<std::string> covered = {"AuthInitReq", "AuthKeyDist",
                                         "AdminMsg"};
  std::uint64_t covered_drops = 0;
  for (const auto& e : events) {
    if (e.kind == obs::TraceKind::fault_drop && covered.count(e.detail))
      ++covered_drops;
  }
  const std::uint64_t repair = w.metrics.counter_total("retransmits_total") +
                               w.metrics.counter_total("reanswers_total") +
                               w.metrics.counter_total(
                                   "exchanges_abandoned_total");
  EXPECT_LE(covered_drops, repair)
      << "dropped stop-and-wait traffic was never repaired, seed=" << seed;
  if (covered_drops > 0) {
    EXPECT_GT(w.metrics.counter_total("retransmits_total"), 0u)
        << "drops occurred but no timer ever fired, seed=" << seed;
  }

  // 3. No duplicate application delivery: the (member, origin, epoch, seq)
  //    coordinates of every data_deliver event are unique, regardless of
  //    how often the injector duplicated the underlying packets.
  std::set<std::tuple<std::string, std::string, std::string, std::uint64_t>>
      deliveries;
  for (const auto& e : events) {
    if (e.kind != obs::TraceKind::data_deliver) continue;
    auto key = std::tuple(e.agent, e.peer, e.detail, e.value);
    EXPECT_TRUE(deliveries.insert(key).second)
        << e.agent << " delivered twice: origin=" << e.peer << " "
        << e.detail << " seq=" << e.value << ", seed=" << seed;
  }

  // 4. Rekey accounting: the leader's counter, its trace events, and the
  //    audit trail all tell the same story.
  std::uint64_t leader_rekey_events = 0;
  for (const auto& e : events)
    if (e.kind == obs::TraceKind::rekey && e.agent == "L")
      ++leader_rekey_events;
  EXPECT_EQ(w.metrics.counter("L", "L", "rekeys_total"), leader_rekey_events);
  EXPECT_EQ(w.metrics.counter("L", "L", "rekeys_total"),
            w.leader->audit().count(AuditKind::rekey));
  EXPECT_GT(leader_rekey_events, 0u);

  // 5. Converged end state is reflected in the gauges.
  EXPECT_EQ(w.metrics.gauge("L", "L", "members"),
            static_cast<std::int64_t>(ChaosWorld::kMembers));
  EXPECT_EQ(w.metrics.gauge("L", "L", "epoch"),
            static_cast<std::int64_t>(w.leader->epoch()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosMetricsInvariants,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Causality invariants: the span graph stitched from the trace and the
// security ledger must reconcile with the raw event stream and the fault
// schedule, for every seed. Every exchange the protocol ran appears as
// exactly one span; every fault verdict a span claims really happened;
// every refusal in the run is attributed in the ledger.
class ChaosCausality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosCausality, SpanGraphAndLedgerReconcileWithTrace) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ChaosWorld w(seed, plan_for_seed(seed));

  // Crash-free lifecycle (a crash clears no trace but forgets in-flight
  // exchanges; the exact pairing invariants below want every exchange to
  // have both ends in the stream).
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle()) << "join phase did not converge, seed=" << seed;
  w.broadcast_numbered(4);
  for (int i = 0; i < 8; ++i) {
    auto& m = *w.members[ChaosWorld::member_id(i % ChaosWorld::kMembers)];
    if (m.connected() && m.has_group_key())
      (void)m.send_data(to_bytes("d#" + std::to_string(i)));
    w.step();
  }
  w.injector.partition({ChaosWorld::member_id(2)});
  for (int t = 0; t < 60; ++t) w.step();
  w.injector.heal();
  ASSERT_TRUE(w.settle(4000)) << "post-heal convergence failed, seed="
                              << seed;

  const auto events = w.trace.events();
  auto spans = obs::SpanTracker::build(events);

  // Event census from the raw stream.
  std::uint64_t join_starts = 0, join_completions = 0;
  std::uint64_t admin_sends = 0, admin_acks = 0;
  std::uint64_t rekey_mints = 0, rekey_applies = 0;
  std::uint64_t retry_events = 0;
  std::multiset<std::tuple<Tick, std::string, std::string>> fault_events;
  for (const auto& e : events) {
    switch (e.kind) {
      case obs::TraceKind::member_phase:
        if (e.detail == "NotConnected->WaitingForKey") ++join_starts;
        if (e.detail == "WaitingForKey->Connected") ++join_completions;
        break;
      case obs::TraceKind::admin_send: ++admin_sends; break;
      case obs::TraceKind::admin_ack: ++admin_acks; break;
      case obs::TraceKind::rekey:
        (e.agent == e.group ? rekey_mints : rekey_applies)++;
        break;
      case obs::TraceKind::retransmit:
      case obs::TraceKind::reanswer: ++retry_events; break;
      case obs::TraceKind::fault_drop:
      case obs::TraceKind::fault_duplicate:
      case obs::TraceKind::fault_delay:
        fault_events.emplace(e.tick,
                             std::string(obs::trace_kind_name(e.kind)),
                             e.detail);
        break;
      default: break;
    }
  }

  // 1. Exchange pairing: one join span per handshake start, one completion
  //    per Connected transition; one admin span per send, one completion
  //    per accepted ack; one rekey root per mint, one delivery child per
  //    member application, each linked to its root.
  std::uint64_t join_spans = 0, join_complete = 0;
  std::uint64_t admin_spans = 0, admin_complete = 0;
  std::uint64_t rekey_roots = 0, deliveries = 0;
  std::uint64_t span_retries = 0;
  for (const auto& s : spans) {
    span_retries += s.retries;
    switch (s.kind) {
      case obs::SpanKind::join:
        ++join_spans;
        join_complete += s.complete ? 1 : 0;
        break;
      case obs::SpanKind::admin_exchange:
        ++admin_spans;
        admin_complete += s.complete ? 1 : 0;
        break;
      case obs::SpanKind::rekey: ++rekey_roots; break;
      case obs::SpanKind::rekey_delivery:
        ++deliveries;
        EXPECT_NE(s.parent, 0u)
            << "delivery of epoch " << s.value << " has no rekey root";
        break;
      default: break;
    }
  }
  EXPECT_EQ(join_spans, join_starts);
  EXPECT_EQ(join_complete, join_completions);
  EXPECT_EQ(admin_spans, admin_sends);
  EXPECT_EQ(admin_complete, admin_acks);
  EXPECT_EQ(rekey_roots, rekey_mints);
  EXPECT_EQ(deliveries, rekey_applies);

  // 2. Retry accounting: a span retry is a retransmit/reanswer event that
  //    hit an open exchange — never more than the stream recorded, and
  //    impossible in a fault-free schedule.
  EXPECT_LE(span_retries, retry_events);
  const auto& stats = w.injector.stats();
  if (stats.dropped + stats.duplicated + stats.delayed +
          stats.partition_dropped ==
      0) {
    EXPECT_EQ(span_retries, 0u);
  }

  // 3. Every fault verdict a span carries really happened: the annotation
  //    multiset embeds into the injector's trace output.
  for (const auto& s : spans) {
    for (const auto& a : s.annotations) {
      if (a.kind != "fault_drop" && a.kind != "fault_duplicate" &&
          a.kind != "fault_delay")
        continue;
      auto it = fault_events.find(std::tuple(a.tick, a.kind, a.detail));
      ASSERT_NE(it, fault_events.end())
          << "span #" << s.id << " claims a " << a.kind << " of " << a.detail
          << " at @" << a.tick << " the injector never issued";
      fault_events.erase(it);  // each verdict annotates at most one span
    }
  }

  // 4. Ledger/metrics agreement: every refusal in the run is one attributed
  //    ledger entry, crypto-plane tag failures included.
  EXPECT_EQ(w.ledger.size(), w.metrics.counter_total("refusals_total"));
  std::uint64_t crypto_entries = 0;
  const std::set<std::string> agents = {"L", "m0", "m1", "m2", "m3"};
  for (const auto& e : w.ledger.entries()) {
    if (e.group == "crypto") {
      ++crypto_entries;
      continue;
    }
    EXPECT_TRUE(agents.count(e.observer))
        << "refusal observed by a stranger: " << e.observer;
    EXPECT_TRUE(e.accused.empty() || agents.count(e.accused))
        << "network faults can only replay group traffic, yet " << e.accused
        << " was accused";
    EXPECT_NE(e.kind, obs::EvidenceKind::fenced_repl)
        << "no HA plane in this world";
  }
  EXPECT_EQ(crypto_entries,
            w.metrics.counter_total("open_failures_total"));
  std::uint64_t attributed = 0;
  for (const auto& e : w.ledger.entries())
    if (!e.accused.empty()) ++attributed;
  std::uint64_t suspicion_total = 0;
  for (const auto& [accused, n] : w.ledger.suspicion_counts())
    suspicion_total += n;
  EXPECT_EQ(suspicion_total, attributed);

  // 5. Evidence attaches into the span graph (an entry may miss only when
  //    its exchange closed before the refusal tick), and both artifacts
  //    export cleanly.
  const std::size_t attached = obs::attach_evidence(spans, w.ledger.entries());
  EXPECT_LE(attached, w.ledger.size());
  const std::string jsonl = obs::spans_to_jsonl(spans);
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, spans.size());
  EXPECT_EQ(spans.size(), obs::SpanTracker::build(events).size())
      << "attach_evidence must not add or drop spans";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCausality,
                         ::testing::Range<std::uint64_t>(1, 51));

// Same seed, two runs: bit-identical observable histories. This is the
// "any failing seed reproduces deterministically" guarantee.
TEST(Chaos, SameSeedReplaysIdentically) {
  auto run = [](std::uint64_t seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosWorld w(seed, plan_for_seed(seed));
    for (auto& [id, m] : w.members) EXPECT_TRUE(m->join().ok());
    EXPECT_TRUE(w.settle());
    w.broadcast_numbered(4);
    for (int i = 0; i < 8; ++i) {
      auto& m = *w.members[ChaosWorld::member_id(i % ChaosWorld::kMembers)];
      if (m.connected() && m.has_group_key())
        (void)m.send_data(to_bytes("d#" + std::to_string(i)));
      w.step();
    }
    EXPECT_TRUE(w.settle());
    return std::tuple(w.leader->epoch(), w.net.packets_sent(),
                      w.trackers["m0"].notice_nums,
                      w.trackers["m3"].epochs);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<1>(run(5)), std::get<1>(run(6)))
      << "different seeds should produce different traffic";
}

// Close handshake under loss, routed through the budgeted RetryPolicy: the
// leaver's ReqClose is dropped repeatedly; backoff re-sends it until the
// leader processes the close, and the budget stops the stream afterwards.
TEST(Chaos, CloseHandshakeSurvivesLossWithBudgetedRetry) {
  SCOPED_TRACE("seed=77");
  net::FaultPlan plan;  // faultless; we drop ReqClose by hand below
  ChaosWorld w(77, plan);
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle());

  int closes_seen = 0;
  w.net.set_tap([&closes_seen](const net::Packet& p) {
    if (p.envelope.label == wire::Label::ReqClose && ++closes_seen <= 3)
      return net::TapVerdict::drop;  // first three attempts die on the wire
    return net::TapVerdict::deliver;
  });
  auto& leaver = *w.members["m0"];
  leaver.set_close_retry_policy(RetryPolicy::bounded(5));
  ASSERT_TRUE(leaver.leave().ok());
  for (int t = 0; t < 10 && w.leader->is_member("m0"); ++t) w.step();
  EXPECT_FALSE(w.leader->is_member("m0"))
      << "close never arrived despite retries";
  EXPECT_GE(closes_seen, 4);

  // The budget caps the stream: once it drains, ticks add nothing — the
  // member cannot observe whether the leader processed the close, so the
  // policy is what stops the retransmissions.
  for (int t = 0; t < 12; ++t) w.step();
  const std::uint64_t sent_before = w.net.packets_sent();
  bool sent_any = false;
  for (int t = 0; t < 10; ++t) sent_any = leaver.tick() > 0 || sent_any;
  EXPECT_FALSE(sent_any);
  EXPECT_EQ(w.net.packets_sent(), sent_before);
}

// Expelled-then-rejoining member gets a fresh session key and never sees
// the old group key again (satellite: Leader::expel_stalled + rejoin).
TEST(Chaos, ExpelledMemberRejoinsWithFreshKeysOnly) {
  SCOPED_TRACE("seed=88");
  net::FaultPlan plan;
  ChaosWorld w(88, plan);
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle());

  auto& victim = *w.members["m1"];
  const crypto::SessionKey old_ka = victim.session().session_key();
  const crypto::GroupKey old_kg = w.leader->group_key();
  const std::uint64_t old_epoch = w.leader->epoch();

  // Cut m1 off; the leader's heartbeats stall on it and auto-expulsion
  // (config.auto_expel_attempts) fires without any manual call.
  w.injector.partition({"m1"});
  for (int t = 0; t < 120 && w.leader->is_member("m1"); ++t) w.step();
  EXPECT_FALSE(w.leader->is_member("m1"));
  EXPECT_GE(w.leader->audit().count(AuditKind::member_expelled), 1u);

  // Survivors rekeyed (strict policy): the old Kg is already stale.
  EXPECT_GT(w.leader->epoch(), old_epoch);

  // Heal; auto-rejoin brings m1 back with a FRESH Ka and the CURRENT Kg.
  w.injector.heal();
  ASSERT_TRUE(w.settle(4000));
  EXPECT_GE(victim.rejoins(), 1u);
  EXPECT_NE(victim.session().session_key(), old_ka)
      << "session key must be fresh after expulsion";
  EXPECT_EQ(victim.epoch(), w.leader->epoch());

  // The old group key opens nothing it receives now.
  DeterministicRng stale_rng(4242);
  wire::GroupDataPayload stale{"m0", old_epoch, 9'999, to_bytes("old")};
  auto stale_env = wire::make_sealed(crypto::default_aead(), old_kg.view(),
                                     stale_rng, wire::Label::GroupData, "m0",
                                     wire::kGroupRecipient,
                                     wire::encode(stale));
  const std::uint64_t rejects_before = victim.data_rejects();
  w.net.inject("m1", stale_env);
  w.net.run();
  EXPECT_GT(victim.data_rejects(), rejects_before)
      << "rejoined member accepted the pre-expulsion group key";
  // And the epochs it accepted never regressed.
  assert_strictly_increasing(w.trackers["m1"].epochs, "m1 epochs");
}

// HealthMonitor under chaos: for every seeded fault schedule the live
// verdict pipeline must (a) score at least one window non-healthy while the
// injector is interfering, (b) attribute the scripted partition to the
// member it actually cut off, and (c) walk back to healthy once the faults
// stop — all reconciled against the injector's own statistics, so a verdict
// can never claim trouble the network didn't cause or miss trouble it did.
class ChaosHealth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosHealth, VerdictTracksInjectedFaultsAndRecovery) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ChaosWorld w(seed, plan_for_seed(seed));

  obs::HealthConfig config;
  config.window = 8;  // one heartbeat interval per window
  obs::HealthMonitor monitor(config);
  obs::HealthState worst_seen = obs::HealthState::healthy;
  obs::HealthState worst_m2 = obs::HealthState::healthy;
  auto pump = [&] {
    if (!monitor.observe(static_cast<Tick>(w.step_count),
                         w.metrics.snapshot()))
      return;
    worst_seen = obs::worse(worst_seen, monitor.verdict().worst());
    worst_m2 = obs::worse(worst_m2, monitor.peer_state("L", "m2"));
  };

  // Phase 1+2: join storm and admin traffic under the seed's fault
  // schedule, with the monitor watching every step.
  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  bool joined = false;
  for (int t = 0; t < 3000 && !joined; ++t) {
    w.step();
    pump();
    joined = w.converged() && w.net.queue_size() == 0 &&
             w.net.held_size() == 0;
  }
  ASSERT_TRUE(joined) << "join phase did not converge, seed=" << seed;
  for (int i = 0; i < 4; ++i) {
    w.leader->broadcast_notice("n" + std::to_string(w.notice_counter++));
    w.step();
    pump();
  }

  // Phase 3: partition m2 until the leader's budgeted retries expel it,
  // then heal and let auto-rejoin repair the group.
  w.injector.partition({ChaosWorld::member_id(2)});
  for (int t = 0; t < 400 && w.leader->is_member("m2"); ++t) {
    w.step();
    pump();
  }
  EXPECT_FALSE(w.leader->is_member("m2"))
      << "auto-expel never fired, seed=" << seed;
  w.injector.heal();
  bool recovered = false;
  for (int t = 0; t < 4000 && !recovered; ++t) {
    w.step();
    pump();
    recovered = w.converged() && w.net.queue_size() == 0 &&
                w.net.held_size() == 0;
  }
  ASSERT_TRUE(recovered) << "post-heal convergence failed, seed=" << seed;

  // Quiet phase: stop all faults and run enough windows for (i) the last
  // in-flight window — convergence can land mid-window, so m2's rejoin
  // delta may still be pending — and (ii) the hysteresis to clear.
  w.net.set_tap([](const net::Packet&) { return net::TapVerdict::deliver; });
  const int quiet_steps =
      static_cast<int>((config.clear_windows + 3) * config.window) + 1;
  for (int t = 0; t < quiet_steps; ++t) {
    w.step();
    pump();
  }

  // Reconciliation (a): the injector provably interfered (the partition
  // drops heartbeats at minimum), so some window must have scored the
  // group non-healthy.
  const net::FaultInjector::Stats& stats = w.injector.stats();
  EXPECT_GT(stats.dropped + stats.partition_dropped, 0u);
  EXPECT_NE(worst_seen, obs::HealthState::healthy)
      << "faults were injected but every window scored healthy";

  // (b) Attribution: the cut-off member itself reached partitioned (or
  // worse) — its suspicion/expulsion/rejoin signals all name m2.
  EXPECT_GE(static_cast<int>(worst_m2),
            static_cast<int>(obs::HealthState::partitioned))
      << "partitioned member was never attributed, seed=" << seed;

  // No fabricated intrusion: pure network faults may only escalate to
  // under_attack if the security ledger really accumulated that much
  // windowed suspicion.
  if (worst_seen == obs::HealthState::under_attack) {
    EXPECT_GE(w.metrics.counter_total("suspicion_total"),
              static_cast<std::uint64_t>(config.attack_suspicion));
  }

  // (c) Recovery: after the quiet windows the verdict must have walked
  // back to healthy everywhere.
  EXPECT_EQ(monitor.group_state("L"), obs::HealthState::healthy)
      << "verdict did not de-escalate after recovery, seed=" << seed;
  ASSERT_EQ(monitor.verdict().groups.count("L"), 1u);
  for (const auto& [peer, ph] : monitor.verdict().groups.at("L").peers)
    EXPECT_EQ(ph.state, obs::HealthState::healthy)
        << "peer " << peer << " stuck at " << obs::health_state_name(ph.state)
        << " (" << ph.why << "), seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosHealth,
                         ::testing::Range<std::uint64_t>(1, 51));

// The zero-false-positive half of the gate: a fault-free schedule must
// never leave healthy — no window may invent degradation, let alone an
// intrusion, out of clean traffic.
TEST(ChaosHealthClean, FaultFreeScheduleStaysHealthyThroughout) {
  ChaosWorld w(/*seed=*/424242, net::FaultPlan{});

  obs::HealthConfig config;
  config.window = 8;
  obs::HealthMonitor monitor(config);
  obs::HealthState worst_seen = obs::HealthState::healthy;
  auto pump = [&] {
    if (monitor.observe(static_cast<Tick>(w.step_count),
                        w.metrics.snapshot()))
      worst_seen = obs::worse(worst_seen, monitor.verdict().worst());
  };

  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  bool joined = false;
  for (int t = 0; t < 3000 && !joined; ++t) {
    w.step();
    pump();
    joined = w.converged() && w.net.queue_size() == 0 &&
             w.net.held_size() == 0;
  }
  ASSERT_TRUE(joined);
  for (int i = 0; i < 24; ++i) {
    if (i % 3 == 0)
      w.leader->broadcast_notice("n" + std::to_string(w.notice_counter++));
    auto& m = *w.members[ChaosWorld::member_id(i % ChaosWorld::kMembers)];
    if (m.connected() && m.has_group_key())
      (void)m.send_data(to_bytes("d" + std::to_string(i) + "#" +
                                 std::to_string(i)));
    w.step();
    pump();
  }

  const net::FaultInjector::Stats& stats = w.injector.stats();
  EXPECT_EQ(stats.dropped + stats.partition_dropped + stats.duplicated +
                stats.delayed,
            0u);
  EXPECT_EQ(worst_seen, obs::HealthState::healthy)
      << "clean schedule produced a non-healthy window: "
      << obs::health_state_name(worst_seen);
}

}  // namespace
}  // namespace enclaves::core
