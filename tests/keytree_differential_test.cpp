// Differential oracle: the flat O(N) rekey and the LKH key tree are two
// implementations of ONE abstract protocol — the paper's group-management
// guarantees must be observationally indistinguishable between them.
//
// Phase (a), lossless: the same seeded churn schedule (joins, voluntary
// leaves, expulsions, manual rekeys, data bursts, notices) is driven through
// a flat-mode world and a tree-mode world. Everything a member application
// can observe must be BIT-IDENTICAL: the delivered (origin, plaintext)
// stream per member, the accepted epoch ladder per member, the leader's
// epoch ladder, and the final views. The security ledger stays empty in
// both — an honest lossless run produces zero refusals.
//
// Phase (b), lossy: under seeded drop/duplicate/delay schedules the two
// modes may take different repair paths (flat retransmits stop-and-wait
// admin exchanges; the tree re-broadcasts and heals via KEY_TREE_RECOVER),
// so the assertion weakens to per-mode convergence invariants: the world
// settles, every member ends on the leader's epoch and view, accepted
// epochs strictly increase, delivered sequences per origin strictly
// increase, and the honest tree run never produces forged_keytree evidence.
//
// The tree is sized (depth 3 = 8 leaves for 6 members) so capacity growth
// never fires in phase (a): growth inserts an extra rebuild epoch that flat
// mode has no counterpart for, which would make the ladders trivially
// different. Growth itself is covered by keytree_attacks_test.cpp and the
// lossy phase here (where only per-mode invariants are asserted).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

// splitmix64: schedule decisions are a pure function of (seed, index), so
// both modes see the exact same churn without sharing an Rng stream (the
// protocol itself consumes randomness at different rates per mode).
std::uint64_t mix(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (i + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct Seen {
  std::vector<std::pair<std::string, std::string>> delivered;  // origin, text
  std::vector<std::uint64_t> epochs;
};

struct DiffWorld {
  static constexpr int kMembers = 6;

  DiffWorld(std::uint64_t seed, RekeyAlgo algo, net::FaultPlan plan,
            bool lossy)
      : rng(seed), injector(std::move(plan), seed ^ 0xD1FF), lossy_(lossy) {
    net.set_tap(injector.tap());
    LeaderConfig config;
    config.id = "L";
    config.rekey = algo == RekeyAlgo::tree ? RekeyPolicy::tree()
                                           : RekeyPolicy::strict();
    config.retry = RetryPolicy::exponential(1, 8, /*jitter=*/2);
    config.auto_expel_attempts = 0;  // churn is scripted, never emergent
    config.keytree_depth = 3;        // 8 leaves: no growth at 6 members
    leader = std::make_unique<Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });

    for (int i = 0; i < kMembers; ++i) {
      const std::string id = member_id(i);
      auto pa = crypto::LongTermKey::random(rng);
      EXPECT_TRUE(leader->register_member(id, pa).ok());
      auto m = std::make_unique<Member>(id, "L", pa, rng);
      m->set_send([this](const std::string& to, wire::Envelope e) {
        net.send(to, std::move(e));
      });
      m->set_retry_policy(RetryPolicy::exponential(1, 8, /*jitter=*/2));
      m->enable_auto_rejoin(RetryPolicy::exponential(2, 16, 3));
      // The liveness/repair plane (heartbeats, suspicion, ReqClose
      // retransmission) exists to mend LOSS. A lossless run keeps it off:
      // ReqClose is fire-and-forget (no ack ever stops its retransmits), so
      // a single voluntary leave would otherwise re-offer the close to an
      // already-closed leader session — a benign duplicate, but it would
      // dirty the refusal-free ledger the lossless phase asserts.
      if (lossy) {
        m->set_close_retry_policy(RetryPolicy::exponential(1, 4, 1, 5));
        m->set_suspect_after(60);
      } else {
        m->set_close_retry_policy(
            RetryPolicy::exponential(1 << 20, 1 << 20, 0, 1));
      }
      Seen* tr = &seen[id];
      m->set_event_handler([tr](const GroupEvent& ev) {
        if (const auto* d = std::get_if<DataReceived>(&ev)) {
          tr->delivered.emplace_back(d->origin,
                                     enclaves::to_string(d->payload));
        } else if (const auto* e2 = std::get_if<EpochChanged>(&ev)) {
          tr->epochs.push_back(e2->epoch);
        }
      });
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  static std::string member_id(int i) { return "m" + std::to_string(i); }

  void step() {
    if (lossy_ && step_count % 8 == 0) leader->probe_liveness();
    net.run(1u << 16);
    leader->tick();
    for (auto& [id, m] : members) m->tick();
    net.run(1u << 16);
    ++step_count;
  }

  bool converged() const {
    for (const auto& [id, m] : members) {
      const bool should_be_in = wanted.count(id) > 0;
      if (should_be_in !=
          (m->connected() && leader->is_member(id)))
        return false;
      if (should_be_in && m->epoch() != leader->epoch()) return false;
      if (should_be_in && m->view() != leader->members()) return false;
    }
    return leader->member_count() == wanted.size();
  }

  bool settle(int max_steps = 4000) {
    for (int t = 0; t < max_steps; ++t) {
      if (converged() && net.queue_size() == 0 && net.held_size() == 0)
        return true;
      step();
    }
    return converged();
  }

  obs::MetricsRegistry metrics;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink{metrics};
  obs::ScopedSecurityLedger ledger_sink{ledger};

  net::SimNetwork net;
  DeterministicRng rng;
  net::FaultInjector injector;
  std::unique_ptr<Leader> leader;
  std::map<std::string, std::unique_ptr<Member>> members;
  std::map<std::string, Seen> seen;
  std::set<std::string> wanted;  // members the schedule wants in-session
  std::uint64_t step_count = 0;
  bool lossy_ = false;
};

struct RunResult {
  std::map<std::string, Seen> seen;
  std::vector<std::uint64_t> leader_epochs;  // after each schedule op
  std::vector<std::string> final_view;
  std::uint64_t final_epoch = 0;
  bool converged = false;
  std::size_t ledger_size = 0;
  std::string ledger_jsonl;
  bool forged_keytree = false;
};

// Drives one seeded churn schedule through one world. The schedule is a
// pure function of the seed; `ops` scripted ops interleaved with settles.
RunResult run_schedule(std::uint64_t seed, RekeyAlgo algo,
                       net::FaultPlan plan, int ops, bool settle_each) {
  DiffWorld w(seed, algo, std::move(plan), /*lossy=*/!settle_each);
  RunResult out;

  for (int i = 0; i < DiffWorld::kMembers; ++i) {
    const std::string id = DiffWorld::member_id(i);
    EXPECT_TRUE(w.members[id]->join().ok());
    w.wanted.insert(id);
  }
  out.converged = w.settle();
  if (!out.converged) return out;

  std::uint64_t data_counter = 0, notice_counter = 0;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t r = mix(seed, static_cast<std::uint64_t>(op));
    const std::string target =
        DiffWorld::member_id(static_cast<int>((r >> 8) % DiffWorld::kMembers));
    switch (r % 5) {
      case 0: {  // data burst from every in-session member
        for (const std::string& id : std::vector<std::string>(
                 w.wanted.begin(), w.wanted.end())) {
          auto& m = *w.members[id];
          if (m.connected() && m.has_group_key())
            EXPECT_TRUE(
                m.send_data(to_bytes("p" + std::to_string(op) + "#" +
                                     std::to_string(data_counter++)))
                    .ok());
        }
        break;
      }
      case 1:  // manual rekey (the Oops(Kg) response / periodic hygiene)
        w.leader->rekey();
        break;
      case 2: {  // voluntary leave, then come back
        if (w.wanted.size() > 2 && w.wanted.count(target)) {
          auto& m = *w.members[target];
          if (m.connected()) {
            EXPECT_TRUE(m.leave().ok());
            w.wanted.erase(target);
            if (settle_each) w.settle();
            EXPECT_TRUE(m.join().ok());
            w.wanted.insert(target);
          }
        }
        break;
      }
      case 3: {  // expulsion (for cause), auto-rejoin brings them back
        if (w.wanted.size() > 2 && w.wanted.count(target) &&
            w.leader->is_member(target)) {
          EXPECT_TRUE(w.leader->expel(target, "scripted").ok());
          // The expelled member's want_membership_ stays true, so its
          // auto-rejoin policy re-admits it; keep it in `wanted`.
        }
        break;
      }
      default:
        w.leader->broadcast_notice("n" + std::to_string(notice_counter++));
        break;
    }
    if (settle_each) {
      EXPECT_TRUE(w.settle()) << "op " << op << " did not settle";
    } else {
      w.step();
    }
    out.leader_epochs.push_back(w.leader->epoch());
  }
  out.converged = w.settle(8000);
  if (!out.converged && ::getenv("DIFF_DEBUG")) {
    fprintf(stderr, "NOT CONVERGED: leader epoch %llu members %zu wanted %zu queue %zu held %zu\n",
            (unsigned long long)w.leader->epoch(), w.leader->member_count(),
            w.wanted.size(), w.net.queue_size(), w.net.held_size());
    for (auto& [id, m] : w.members)
      fprintf(stderr, "  %s wanted=%d connected=%d leader_has=%d epoch=%llu view=%zu\n",
              id.c_str(), (int)w.wanted.count(id), (int)m->connected(),
              (int)w.leader->is_member(id), (unsigned long long)m->epoch(),
              m->view().size());
  }
  out.seen = w.seen;
  out.final_view = w.leader->members();
  out.final_epoch = w.leader->epoch();
  out.ledger_size = w.ledger.size();
  out.ledger_jsonl = w.ledger.to_jsonl();
  for (const auto& e : w.ledger.entries())
    if (e.kind == obs::EvidenceKind::forged_keytree)
      out.forged_keytree = true;
  return out;
}

void assert_strictly_increasing(const std::vector<std::uint64_t>& xs,
                                const std::string& what) {
  for (std::size_t i = 1; i < xs.size(); ++i)
    ASSERT_LT(xs[i - 1], xs[i]) << what << " regressed at index " << i;
}

// ---------------------------------------------------------------------------
// Phase (a): lossless, 50 seeds — bit-identical observable behaviour.

class KeyTreeDifferentialLossless
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyTreeDifferentialLossless, FlatAndTreeAreObservationallyIdentical) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  RunResult flat = run_schedule(seed, RekeyAlgo::flat, net::FaultPlan{},
                                /*ops=*/18, /*settle_each=*/true);
  RunResult tree = run_schedule(seed, RekeyAlgo::tree, net::FaultPlan{},
                                /*ops=*/18, /*settle_each=*/true);
  ASSERT_TRUE(flat.converged) << "flat world did not settle";
  ASSERT_TRUE(tree.converged) << "tree world did not settle";

  // The leader's epoch ladder: same schedule, same rekey count, same epoch
  // after every single op.
  EXPECT_EQ(flat.leader_epochs, tree.leader_epochs);
  EXPECT_EQ(flat.final_epoch, tree.final_epoch);
  EXPECT_EQ(flat.final_view, tree.final_view);

  // Per member: bit-identical delivered plaintext streams and identical
  // accepted-epoch ladders.
  for (int i = 0; i < DiffWorld::kMembers; ++i) {
    const std::string id = DiffWorld::member_id(i);
    EXPECT_EQ(flat.seen[id].delivered, tree.seen[id].delivered)
        << id << " delivered a different plaintext stream under the tree";
    EXPECT_EQ(flat.seen[id].epochs, tree.seen[id].epochs)
        << id << " walked a different epoch ladder under the tree";
  }

  // An honest lossless run refuses nothing, in either mode.
  EXPECT_EQ(flat.ledger_size, 0u) << flat.ledger_jsonl;
  EXPECT_EQ(tree.ledger_size, 0u) << tree.ledger_jsonl;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyTreeDifferentialLossless,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Phase (b): lossy, 50 seeds — per-mode convergence invariants.

net::FaultPlan lossy_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.faults.drop_pct = static_cast<std::uint32_t>((seed * 7) % 21);
  plan.faults.duplicate_pct = static_cast<std::uint32_t>((seed * 3) % 16);
  plan.faults.delay_pct = static_cast<std::uint32_t>((seed * 5) % 21);
  plan.faults.max_delay_steps = 1 + static_cast<std::uint32_t>(seed % 5);
  return plan;
}

class KeyTreeDifferentialLossy
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyTreeDifferentialLossy, BothModesConvergeUnderSeededFaults) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  for (RekeyAlgo algo : {RekeyAlgo::flat, RekeyAlgo::tree}) {
    const char* mode = algo == RekeyAlgo::tree ? "tree" : "flat";
    SCOPED_TRACE(mode);
    RunResult r = run_schedule(seed, algo, lossy_plan(seed),
                               /*ops=*/14, /*settle_each=*/false);
    ASSERT_TRUE(r.converged) << mode << " world did not converge";
    for (const auto& [id, tr] : r.seen) {
      assert_strictly_increasing(tr.epochs, id + " accepted epochs");
      // Delivered payloads carry a global strictly-increasing counter per
      // burst; per-origin they must arrive in order and without dupes.
      std::map<std::string, std::vector<std::uint64_t>> per_origin;
      for (const auto& [origin, text] : tr.delivered) {
        auto at = text.find('#');
        ASSERT_NE(at, std::string::npos);
        per_origin[origin].push_back(std::stoull(text.substr(at + 1)));
      }
      for (const auto& [origin, seqs] : per_origin)
        assert_strictly_increasing(seqs, id + " data from " + origin);
    }
    // Network faults can replay honest traffic (stale evidence is fine)
    // but can never manufacture a confirmable forged tree update.
    EXPECT_FALSE(r.forged_keytree)
        << mode << ": honest faults produced forged_keytree evidence";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyTreeDifferentialLossy,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Determinism: the tree mode replays bit-identically from a seed, exactly
// like the rest of the chaos stack.

TEST(KeyTreeDifferential, TreeModeReplaysIdenticallyFromSeed) {
  auto run = [](std::uint64_t seed) {
    RunResult r = run_schedule(seed, RekeyAlgo::tree, lossy_plan(seed),
                               /*ops=*/10, /*settle_each=*/false);
    return std::tuple(r.final_epoch, r.leader_epochs,
                      r.seen["m0"].delivered, r.seen["m3"].epochs);
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace enclaves::core
