// SHA-256 against FIPS 180-4 / NIST CAVP vectors plus incremental-update
// behaviour and a cross-check against OpenSSL.
#include <gtest/gtest.h>
#include <openssl/sha.h>

#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/rng.h"

namespace enclaves::crypto {
namespace {

std::string hash_hex(BytesView data) {
  auto d = Sha256::hash(data);
  return to_hex({d.data(), d.size()});
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(to_hex({d.data(), d.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 55, 56, 63, 64, 65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes msg(len, 0xAB);
    unsigned char ref[SHA256_DIGEST_LENGTH];
    SHA256(msg.data(), msg.size(), ref);
    auto mine = Sha256::hash(msg);
    EXPECT_EQ(to_hex({mine.data(), mine.size()}),
              to_hex({ref, SHA256_DIGEST_LENGTH}))
        << "len=" << len;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  DeterministicRng rng(42);
  Bytes msg = rng.bytes(10000);
  for (std::size_t chunk : {1u, 3u, 17u, 64u, 100u, 1000u}) {
    Sha256 h;
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      std::size_t n = std::min(chunk, msg.size() - off);
      h.update({msg.data() + off, n});
    }
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "chunk=" << chunk;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  auto d = h.finish();
  EXPECT_EQ(to_hex({d.data(), d.size()}),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

class Sha256RandomCross : public ::testing::TestWithParam<int> {};

TEST_P(Sha256RandomCross, MatchesOpenSsl) {
  DeterministicRng rng(static_cast<std::uint64_t>(GetParam()));
  std::size_t len = static_cast<std::size_t>(rng.below(4096));
  Bytes msg = rng.bytes(len);
  unsigned char ref[SHA256_DIGEST_LENGTH];
  SHA256(msg.data(), msg.size(), ref);
  auto mine = Sha256::hash(msg);
  EXPECT_TRUE(std::equal(mine.begin(), mine.end(), ref));
}

INSTANTIATE_TEST_SUITE_P(RandomLengths, Sha256RandomCross,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace enclaves::crypto
