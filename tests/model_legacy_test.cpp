// Legacy symbolic model: the checker must DISCOVER the Section 2.3 attacks
// as counterexample traces, and the freshness fix must eliminate them —
// the symbolic twin of the concrete attack matrix (E8–E10).
#include <gtest/gtest.h>

#include "model/legacy_model.h"

namespace enclaves::model {
namespace {

std::string render(const LegacyExploreResult& r) {
  std::string s;
  for (const auto& v : r.violations) s += v.property + ": " + v.detail + "\n";
  for (const auto& step : r.counterexample) s += "  -> " + step + "\n";
  return s;
}

bool has_property(const LegacyExploreResult& r, const std::string& prop) {
  for (const auto& v : r.violations) {
    if (v.property == prop) return true;
  }
  return false;
}

TEST(LegacyModel, CheckerFindsAllThreeSection23Attacks) {
  LegacyModel model(LegacyModelConfig{});
  auto r = explore_legacy(model);
  EXPECT_FALSE(r.truncated);
  ASSERT_FALSE(r.ok()) << "the vulnerable protocol must produce violations";
  EXPECT_TRUE(has_property(r, "key-freshness")) << render(r);
  EXPECT_TRUE(has_property(r, "confidentiality")) << render(r);
  EXPECT_TRUE(has_property(r, "view-integrity")) << render(r);
}

TEST(LegacyModel, ShortestAttackIsTheKeyReplay) {
  LegacyModel model(LegacyModelConfig{});
  auto r = explore_legacy(model);
  // BFS finds the minimal trace first: replaying the old {Kg0}_Ka downgrade
  // is a one-step attack.
  ASSERT_FALSE(r.counterexample.empty());
  EXPECT_EQ(r.counterexample.size(), 1u) << render(r);
  EXPECT_NE(r.counterexample[0].find("REPLAYED"), std::string::npos)
      << render(r);
}

TEST(LegacyModel, InitialStateIsClean) {
  LegacyModel model(LegacyModelConfig{});
  auto q = model.initial();
  EXPECT_TRUE(model.check(q).empty())
      << "violations come from protocol steps, not the setup";
}

TEST(LegacyModel, FreshnessFixEliminatesEveryAttack) {
  LegacyModelConfig cfg;
  cfg.fix_freshness = true;
  LegacyModel model(cfg);
  auto r = explore_legacy(model);
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(r.ok()) << render(r);
  EXPECT_GT(r.states_explored, 5u) << "the fixed protocol still does things";
}

TEST(LegacyModel, FixedModelStillRekeysAndRemoves) {
  // The fix must not verify by making the protocol inert: genuine rekeys
  // and genuine removal notices still happen.
  LegacyModelConfig cfg;
  cfg.fix_freshness = true;
  LegacyModel model(cfg);
  bool saw_rekey_accept = false, saw_remove = false;
  auto q0 = model.initial();
  // One BFS layer at a time, look for the honest transitions.
  std::vector<LegacyModelState> layer = {q0};
  for (int depth = 0; depth < 4; ++depth) {
    std::vector<LegacyModelState> next_layer;
    for (const auto& q : layer) {
      for (auto& t : model.successors(q)) {
        if (t.label.find("A.recv_newkey[current]") != std::string::npos)
          saw_rekey_accept = true;
        if (t.label.find("A.recv_memremoved") != std::string::npos)
          saw_remove = true;
        next_layer.push_back(std::move(t.next));
      }
    }
    layer = std::move(next_layer);
  }
  EXPECT_TRUE(saw_rekey_accept);
  EXPECT_TRUE(saw_remove);
}

TEST(LegacyModel, IntruderStartsWithOldKeyOnly) {
  LegacyModel model(LegacyModelConfig{});
  auto q = model.initial();
  auto know = model.intruder_knowledge(q);
  // It can open the OLD rekey message (it has Kg0) but not learn Ka or Kg1.
  int known_session_keys = 0;
  for (FieldId f : know) {
    if (model.pool().is_session_key(f)) ++known_session_keys;
  }
  EXPECT_EQ(known_session_keys, 1) << "exactly the old group key";
}

}  // namespace
}  // namespace enclaves::model
