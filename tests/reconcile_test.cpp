// Partition-tolerant operation and reconciliation-on-heal (PROTOCOL.md §12):
// a suspected/expelled member keeps its group state, queues sends into the
// signed OpLog, and on heal replays it through the RECONCILE_OFFER /
// RECONCILE_VERDICT / OP_REPLAY exchange — admitted cleanly (fast rejoin, no
// rekey storm), quarantined when stale, or flagged as intrusion when forged.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "core/oplog.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "net/trace_chart.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "wire/reconcile.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

Bytes bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Leader + members over SimNetwork with a manual-partition fault tap and
// all three observability sinks installed, so every test can assert on
// metrics, traces, spans, and the security ledger.
struct PartitionWorld {
  explicit PartitionWorld(std::uint64_t seed, std::uint64_t parole_epochs = 4)
      : rng(seed),
        injector({}, seed ^ 0xFA017),
        leader(make_config(parole_epochs), rng),
        metrics_sink(metrics),
        trace_sink(trace),
        ledger_sink(ledger) {
    net.set_tap(injector.tap());
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  static LeaderConfig make_config(std::uint64_t parole_epochs) {
    LeaderConfig c{"L", RekeyPolicy::strict()};
    c.parole_epochs = parole_epochs;
    c.auto_expel_attempts = 3;  // silent members fall off (onto parole)
    return c;
  }

  // Protocol-plane ledger view: the clockless crypto plane files its own
  // tag-mismatch evidence under group "crypto".
  std::vector<obs::SecurityEvidence> core_evidence() const {
    std::vector<obs::SecurityEvidence> out;
    for (const auto& e : ledger.entries())
      if (e.group != "crypto") out.push_back(e);
    return out;
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  // Joins `m` and drains the network.
  void join(Member& m) {
    ASSERT_TRUE(m.join().ok());
    net.run();
    ASSERT_TRUE(m.connected());
  }

  // Drives member+leader ticks with full delivery until `done` or budget.
  template <typename Pred>
  void settle(Pred done, int budget = 40) {
    for (int i = 0; i < budget && !done(); ++i) {
      for (auto& [id, m] : members) m->tick();
      leader.tick();
      net.run();
    }
  }

  net::SimNetwork net;
  DeterministicRng rng;
  net::FaultInjector injector;
  Leader leader;
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink;
  obs::ScopedTraceSink trace_sink;
  obs::ScopedSecurityLedger ledger_sink;
  std::map<std::string, std::unique_ptr<Member>> members;
};

std::string strip_trailing_blanks(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    auto end = line.find_last_not_of(' ');
    out.append(line, 0, end == std::string::npos ? 0 : end + 1);
    out += '\n';
  }
  return out;
}

// --- Satellite regression: the expel path no longer unconditionally drops
// group state. A liveness ("stalled") expulsion with reconciliation enabled
// keeps Kg/epoch/view and enters disconnected mode; a for-cause expulsion
// still drops everything.
TEST(Reconcile, StallExpulsionKeepsGroupStateWhenEnabled) {
  PartitionWorld w(11);
  auto& alice = w.add("alice");
  alice.enable_reconciliation(RetryPolicy::bounded(8));
  w.join(alice);
  const auto epoch_before = alice.epoch();
  ASSERT_TRUE(alice.has_group_key());

  ASSERT_TRUE(w.leader.expel("alice", "stalled").ok());
  w.net.run();

  EXPECT_TRUE(alice.disconnected());
  EXPECT_TRUE(alice.has_group_key()) << "group state must survive the expel";
  EXPECT_EQ(alice.epoch(), epoch_before);
  EXPECT_EQ(alice.view(), std::vector<std::string>{"alice"});
  EXPECT_TRUE(w.leader.on_parole("alice"));
}

TEST(Reconcile, ForCauseExpulsionStillDropsGroupState) {
  PartitionWorld w(12);
  auto& alice = w.add("alice");
  alice.enable_reconciliation(RetryPolicy::bounded(8));
  w.join(alice);

  ASSERT_TRUE(w.leader.expel("alice", "policy violation").ok());
  w.net.run();

  EXPECT_FALSE(alice.disconnected());
  EXPECT_FALSE(alice.has_group_key()) << "for-cause expel is punitive";
  EXPECT_FALSE(w.leader.on_parole("alice"));
}

TEST(Reconcile, DisconnectedModeWithoutOptInIsUnchanged) {
  // Without enable_reconciliation the historical behaviour holds: the
  // stalled expel drops state and send_data refuses.
  PartitionWorld w(13);
  auto& alice = w.add("alice");
  w.join(alice);
  ASSERT_TRUE(w.leader.expel("alice", "stalled").ok());
  w.net.run();
  EXPECT_FALSE(alice.disconnected());
  EXPECT_FALSE(alice.has_group_key());
  EXPECT_FALSE(alice.send_data(bytes("x")).ok());
}

// --- The tentpole happy path: partition -> suspicion -> queue -> expel ->
// heal -> offer -> admit -> replay -> fast rejoin. The witness member must
// see every queued op exactly once, and the heal must not rekey beyond the
// expulsion's own on-leave rekey.
TEST(Reconcile, PartitionHealReplaysOpsWithoutRekeyStorm) {
  PartitionWorld w(21);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  alice.set_suspect_after(3);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  std::vector<std::string> bob_saw;
  bob.set_event_handler([&](const GroupEvent& e) {
    if (const auto* d = std::get_if<DataReceived>(&e))
      bob_saw.push_back(std::string(d->payload.begin(), d->payload.end()));
  });
  w.join(alice);
  w.join(bob);

  // Partition alice away; her suspicion timer marks the disconnect.
  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 10);
  ASSERT_TRUE(alice.disconnected());
  EXPECT_TRUE(alice.has_group_key()) << "state retained through partition";

  // Offline sends queue into the op-log instead of failing.
  ASSERT_TRUE(alice.send_data(bytes("offline-1")).ok());
  ASSERT_TRUE(alice.send_data(bytes("offline-2")).ok());
  EXPECT_EQ(alice.oplog_depth(), 2u);

  // The leader eventually expels the silent member — onto the parole list.
  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 10);
  ASSERT_FALSE(w.leader.is_member("alice"));
  ASSERT_TRUE(w.leader.on_parole("alice"));
  const auto rekeys_at_expel = w.leader.audit().count(AuditKind::rekey);

  // Heal: the queued ops replay, the chain verifies, alice fast-rejoins.
  w.injector.heal();
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 30);
  ASSERT_TRUE(alice.connected());
  EXPECT_EQ(alice.epoch(), w.leader.epoch());
  EXPECT_EQ(alice.oplog_depth(), 0u);
  EXPECT_FALSE(w.leader.on_parole("alice")) << "parole consumed by rejoin";

  // No rekey storm: the fast rejoin itself must not mint a new epoch.
  EXPECT_EQ(w.leader.audit().count(AuditKind::rekey), rekeys_at_expel);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_fast_rejoins_total"), 1u);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_admits_total"), 1u);

  // The witness saw both offline ops, in order, exactly once.
  EXPECT_EQ(bob_saw,
            (std::vector<std::string>{"offline-1", "offline-2"}));

  // Live again: the replayed seqs are fenced off, so a fresh publish lands.
  ASSERT_TRUE(alice.send_data(bytes("online-again")).ok());
  w.net.run();
  EXPECT_EQ(bob_saw.back(), "online-again");
  EXPECT_EQ(bob_saw.size(), 3u) << "no duplicate deliveries";

  // The span builder stitches the whole episode into one reconcile span.
  auto spans = obs::SpanTracker::build(w.trace.events());
  const obs::Span* reconcile = nullptr;
  for (const auto& s : spans)
    if (s.kind == obs::SpanKind::reconcile) reconcile = &s;
  ASSERT_NE(reconcile, nullptr);
  EXPECT_TRUE(reconcile->complete);
  EXPECT_EQ(reconcile->agent, "alice");
  EXPECT_EQ(reconcile->detail, "suspected");
  bool saw_offer = false, saw_replay = false, saw_admit = false;
  for (const auto& a : reconcile->annotations) {
    if (a.kind == "reconcile_offer") saw_offer = true;
    if (a.kind == "op_replay") saw_replay = true;
    if (a.kind == "reconcile_verdict" && a.detail == "admit") saw_admit = true;
  }
  EXPECT_TRUE(saw_offer);
  EXPECT_TRUE(saw_replay);
  EXPECT_TRUE(saw_admit);

  // Zero refusals anywhere: a clean heal leaves no security evidence.
  EXPECT_TRUE(w.core_evidence().empty());
}

// --- Regression: when the FINAL op's admit verdict is lost, the leader has
// already completed the replay (parole inactive) while the member is still
// retransmitting that op. The retransmit must hit the re-answer path, not
// the "no active reconciliation" reject — otherwise both sides deadlock.
TEST(Reconcile, LostFinalVerdictIsReanswered) {
  PartitionWorld w(31);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  alice.set_suspect_after(3);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  w.join(alice);
  w.join(bob);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 10);
  ASSERT_TRUE(alice.disconnected());
  ASSERT_TRUE(alice.send_data(bytes("solo")).ok());
  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 10);
  ASSERT_TRUE(w.leader.on_parole("alice"));

  // Heal, but swallow exactly one verdict: the first one sent AFTER the
  // leader verified the lone op — i.e. the final ack the member needs to
  // finish its reconciliation.
  w.injector.heal();
  bool dropped = false;
  w.net.set_tap([&](const net::Packet& p) -> net::TapDecision {
    if (!dropped && p.envelope.label == wire::Label::ReconcileVerdict &&
        w.metrics.counter("L", "L", "reconcile_ops_replayed_total") == 1) {
      dropped = true;
      return net::TapVerdict::drop;
    }
    return net::TapVerdict::deliver;
  });
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 30);

  ASSERT_TRUE(dropped) << "test premise: the final verdict was cut";
  ASSERT_TRUE(alice.connected()) << "member must recover via re-answer";
  EXPECT_EQ(alice.oplog_depth(), 0u);
  EXPECT_GE(w.metrics.counter("L", "L", "reanswers_total"), 1u);
  // The op was verified and relayed once; the retransmit was answered from
  // the verdict cache, not re-verified.
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_ops_replayed_total"), 1u);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_fast_rejoins_total"), 1u);
}

// --- Golden chart: the observable event sequence of the heal itself
// (suspicion through fast rejoin), committed as text. Single member so the
// chart stays readable; trace cleared at the heal boundary.
TEST(Reconcile, GoldenHealChart) {
  PartitionWorld w(31);
  auto& alice = w.add("alice");
  alice.set_suspect_after(2);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  w.join(alice);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 8);
  ASSERT_TRUE(alice.disconnected());
  ASSERT_TRUE(alice.send_data(bytes("queued")).ok());

  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 8);
  ASSERT_TRUE(w.leader.on_parole("alice"));

  w.trace.clear();
  w.injector.heal();
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 20);
  ASSERT_TRUE(alice.connected());

  // The committed heal story: the injector heals, the cached offer goes
  // through, the leader admits (minting one epoch first — the relay
  // seq-collision guard, since the epoch never moved while alice was dark),
  // the single queued op replays and is acked, the member closes its span
  // with the admitted verdict, and the fast-rejoin handshake re-attaches
  // alice at the current epoch with no further rekey.
  const std::string golden =
      "@15   fault      fault_partition [heal] =1\n"
      "@6    alice      retransmit      -> L          [ReconcileOffer]\n"
      "@6    L          reconcile_offer -> alice      [admit] =1\n"
      "@6    L          rekey           =2\n"
      "@6    L          reconcile_verdict -> alice      [admit]\n"
      "@6    alice      op_replay       -> L          =1\n"
      "@6    L          op_replay       -> alice      =1\n"
      "@6    L          reconcile_verdict -> alice      [admit] =1\n"
      "@6    alice      reconcile_verdict -> L          [admitted] =2\n"
      "@6    alice      member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@6    L          leader_phase    -> alice      [NotConnected->WaitingForKeyAck]\n"
      "@6    alice      member_phase    -> L          [WaitingForKey->Connected]\n"
      "@6    L          leader_phase    -> alice      [WaitingForKeyAck->Connected]\n"
      "@6    L          join            -> alice\n"
      "@6    L          rejoin          -> alice      [reconciled]\n"
      "@6    L          admin_send      -> alice      [new_group_key]\n"
      "@6    alice      rekey           -> L          =2\n"
      "@6    L          admin_ack       -> alice\n"
      "@6    L          admin_send      -> alice      [member_list]\n"
      "@6    L          admin_ack       -> alice\n";
  EXPECT_EQ(strip_trailing_blanks(net::format_event_chart(w.trace.events())),
            golden);
}

// --- Golden span tree: the same lifecycle uncleared, so the disconnect
// anchor survives and the whole episode stitches into one reconcile span
// with the offer / replay / verdict milestones as annotations.
TEST(Reconcile, GoldenHealSpanTree) {
  PartitionWorld w(31);
  auto& alice = w.add("alice");
  alice.set_suspect_after(2);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  w.join(alice);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 8);
  ASSERT_TRUE(alice.disconnected());
  ASSERT_TRUE(alice.send_data(bytes("queued")).ok());
  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 8);
  ASSERT_TRUE(w.leader.on_parole("alice"));
  w.injector.heal();
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 20);
  ASSERT_TRUE(alice.connected());

  // One reconcile span (#6) carries the whole episode — queue, offers,
  // replay, verdicts — and the fast rejoin (#9) hangs off the same trace
  // with the single no-storm rekey (#8, the relay seq-collision guard).
  // #7 is the leader's heartbeat exchange the partition ate (hence open,
  // with its fault_drop verdicts attached).
  const std::string golden =
      "#1 join                  alice      -> L          @0..0 ok\n"
      "#2 rekey                 L                        @0..0 ok =1\n"
      "  #4 rekey_delivery      alice      -> L          @0..0 ok =1\n"
      "#3 admin_exchange        L          -> alice      @0..0 ok [new_group_key]\n"
      "#5 admin_exchange        L          -> alice      @0..0 ok [member_list]\n"
      "#6 reconcile             alice      -> L          @2..6 ok [suspected]\n"
      "  ! @2 reconcile_offer\n"
      "  ! @2 oplog_append =1\n"
      "  ! @3 reconcile_offer =1\n"
      "  ! @6 reconcile_offer [admit] =1\n"
      "  ! @6 reconcile_verdict [admit]\n"
      "  ! @6 op_replay =1\n"
      "  ! @6 op_replay =1\n"
      "  ! @6 reconcile_verdict [admit] =1\n"
      "  ! @6 reconcile_verdict [admitted] =2\n"
      "#7 admin_exchange        L          -> alice      @2..2 open retries=3 [notice]\n"
      "  ! @8 fault_drop [AdminMsg]\n"
      "  ! @10 fault_drop [AdminMsg]\n"
      "  ! @12 fault_drop [AdminMsg]\n"
      "  ! @14 fault_drop [AdminMsg]\n"
      "#8 rekey                 L                        @6..6 ok =2\n"
      "  #11 rekey_delivery     alice      -> L          @6..6 ok =2\n"
      "#9 join                  alice      -> L          @6..6 ok\n"
      "#10 admin_exchange       L          -> alice      @6..6 ok [new_group_key]\n"
      "#12 admin_exchange       L          -> alice      @6..6 ok [member_list]\n";
  EXPECT_EQ(obs::format_span_tree(obs::SpanTracker::build(w.trace.events())),
            golden);
}

// --- Negative golden: the quarantine heal. The offer's fence fell outside
// the parole window; the verdict sends alice down the standard rejoin path
// (with its on-join rekey) and the span closes quarantined.
TEST(Reconcile, GoldenQuarantineChart) {
  PartitionWorld w(31, /*parole_epochs=*/1);
  auto& alice = w.add("alice");
  alice.set_suspect_after(2);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  w.join(alice);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 8);
  ASSERT_TRUE(alice.disconnected());
  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 8);
  ASSERT_TRUE(w.leader.on_parole("alice"));
  w.leader.rekey();
  w.leader.rekey();

  w.trace.clear();
  w.injector.heal();
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 20);
  ASSERT_TRUE(alice.connected());

  // The quarantine story: the stale offer is answered (not ignored), the
  // member closes its span quarantined at the leader's epoch, drops state,
  // and the very next tick re-enters through the standard rejoin — with the
  // on-join rekey the fast path would have skipped.
  const std::string golden =
      "@15   fault      fault_partition [heal] =1\n"
      "@6    alice      retransmit      -> L          [ReconcileOffer]\n"
      "@6    L          reconcile_offer -> alice      [quarantine]\n"
      "@6    L          reconcile_verdict -> alice      [quarantine]\n"
      "@6    alice      reconcile_verdict -> L          [quarantined] =3\n"
      "@7    alice      rejoin          -> L\n"
      "@7    alice      member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@7    L          leader_phase    -> alice      [NotConnected->WaitingForKeyAck]\n"
      "@7    alice      member_phase    -> L          [WaitingForKey->Connected]\n"
      "@7    L          leader_phase    -> alice      [WaitingForKeyAck->Connected]\n"
      "@7    L          join            -> alice\n"
      "@7    L          rekey           =4\n"
      "@7    L          admin_send      -> alice      [new_group_key]\n"
      "@7    alice      rekey           -> L          =4\n"
      "@7    L          admin_ack       -> alice\n"
      "@7    L          admin_send      -> alice      [member_list]\n"
      "@7    L          admin_ack       -> alice\n";
  EXPECT_EQ(strip_trailing_blanks(net::format_event_chart(w.trace.events())),
            golden);
}

// --- Negative: an offer whose epoch fence fell outside the parole window is
// quarantined — ledger evidence, no replay, member falls back to the
// standard rejoin path (with its rekey).
TEST(Reconcile, StaleEpochOfferIsQuarantined) {
  PartitionWorld w(41, /*parole_epochs=*/2);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  alice.set_suspect_after(3);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  w.join(alice);
  w.join(bob);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 10);
  ASSERT_TRUE(alice.send_data(bytes("too-late")).ok());
  w.leader.probe_liveness();
  w.net.run();
  w.settle([&] { return !w.leader.is_member("alice"); }, 10);
  ASSERT_TRUE(w.leader.on_parole("alice"));

  // The group moves on: enough rekeys that alice's fence leaves the window.
  w.leader.rekey();
  w.leader.rekey();
  w.net.run();

  std::vector<std::string> bob_saw;
  bob.set_event_handler([&](const GroupEvent& e) {
    if (const auto* d = std::get_if<DataReceived>(&e))
      bob_saw.push_back(std::string(d->payload.begin(), d->payload.end()));
  });

  w.injector.heal();
  w.settle([&] { return alice.connected() && !alice.disconnected(); }, 30);
  ASSERT_TRUE(alice.connected()) << "standard rejoin after quarantine";

  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_quarantines_total"), 1u);
  EXPECT_EQ(w.metrics.counter("L", "alice", "reconcile_admits_total"), 0u);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_fast_rejoins_total"), 0u);
  EXPECT_TRUE(bob_saw.empty()) << "quarantined ops must not be delivered";

  bool ledgered = false;
  for (const auto& e : w.ledger.entries()) {
    if (e.kind == obs::EvidenceKind::stale_epoch && e.accused == "alice" &&
        e.observer == "L")
      ledgered = true;
  }
  EXPECT_TRUE(ledgered) << "quarantine leaves stale_epoch evidence";

  // The member-side span closed with the quarantine verdict.
  auto spans = obs::SpanTracker::build(w.trace.events());
  bool quarantined_span = false;
  for (const auto& s : spans) {
    if (s.kind == obs::SpanKind::reconcile && s.complete) {
      for (const auto& a : s.annotations)
        if (a.kind == "reconcile_verdict" && a.detail == "quarantine")
          quarantined_span = true;
    }
  }
  EXPECT_TRUE(quarantined_span);
}

// --- Negative: a replayed op that breaks the HMAC chain is intrusion, not
// staleness — forged_oplog evidence naming the accused, parole revoked from
// further replay.
TEST(Reconcile, ForgedOpReplayFlagsIntrusion) {
  PartitionWorld w(51);
  auto& mallory = w.add("mallory");
  w.join(mallory);
  // Steal the session key while connected (the paper's Oops(Ka) threat).
  const auto kr = mallory.session().session_key();
  const auto fence = w.leader.epoch();

  ASSERT_TRUE(w.leader.expel("mallory", "stalled").ok());
  w.net.detach("mallory");  // the real member is out of the picture
  w.net.run();
  ASSERT_TRUE(w.leader.on_parole("mallory"));

  const auto& aead = crypto::default_aead();

  // A well-formed offer under the stolen Kr: one op, honest-looking head.
  OpLog log(kr);
  ASSERT_TRUE(log.append(fence, bytes("poison")).ok());
  auto nonce = crypto::ProtocolNonce::random(w.rng);
  wire::ReconcileOfferPayload offer{"mallory", "L",       nonce,
                                    fence,     log.size(), log.head()};
  w.net.inject("L", wire::make_sealed(aead, kr.view(), w.rng,
                                      wire::Label::ReconcileOffer, "mallory",
                                      "L", wire::encode(offer)));
  w.net.run();
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_admits_total"), 1u);

  // The replayed op carries a forged MAC: the chain breaks at the leader.
  wire::OpReplayPayload op{"mallory", 1, fence, {}, bytes("poison")};
  op.mac.fill(0xFF);
  w.net.inject("L", wire::make_sealed(aead, kr.view(), w.rng,
                                      wire::Label::OpReplay, "mallory", "L",
                                      wire::encode(op)));
  w.net.run();

  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_intrusions_total"), 1u);
  bool ledgered = false;
  for (const auto& e : w.ledger.entries()) {
    if (e.kind == obs::EvidenceKind::forged_oplog && e.accused == "mallory" &&
        e.observer == "L")
      ledgered = true;
  }
  EXPECT_TRUE(ledgered) << "forged replay must be ledgered as intrusion";

  // The parole is no longer replayable: a (now honest) retry is refused.
  wire::OpReplayPayload honest{"mallory", 1, fence,
                               log.entries()[0].mac, bytes("poison")};
  const auto rejects = w.metrics.counter("L", "L", "auth_rejects_total");
  w.net.inject("L", wire::make_sealed(aead, kr.view(), w.rng,
                                      wire::Label::OpReplay, "mallory", "L",
                                      wire::encode(honest)));
  w.net.run();
  EXPECT_GT(w.metrics.counter("L", "L", "auth_rejects_total"), rejects);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_ops_replayed_total"), 0u);
}

// --- Negative golden: the forged-op intrusion, as the leader's trace tells
// it — a clean admit followed by a replay whose chain MAC breaks, answered
// with the intrusion verdict.
TEST(Reconcile, GoldenIntrusionChart) {
  PartitionWorld w(51);
  auto& mallory = w.add("mallory");
  w.join(mallory);
  const auto kr = mallory.session().session_key();
  const auto fence = w.leader.epoch();
  ASSERT_TRUE(w.leader.expel("mallory", "stalled").ok());
  w.net.detach("mallory");
  w.net.run();
  ASSERT_TRUE(w.leader.on_parole("mallory"));

  const auto& aead = crypto::default_aead();
  OpLog log(kr);
  ASSERT_TRUE(log.append(fence, bytes("poison")).ok());
  auto nonce = crypto::ProtocolNonce::random(w.rng);
  wire::ReconcileOfferPayload offer{"mallory", "L",       nonce,
                                    fence,     log.size(), log.head()};
  wire::OpReplayPayload op{"mallory", 1, fence, {}, bytes("poison")};
  op.mac.fill(0xFF);

  w.trace.clear();
  w.net.inject("L", wire::make_sealed(aead, kr.view(), w.rng,
                                      wire::Label::ReconcileOffer, "mallory",
                                      "L", wire::encode(offer)));
  w.net.inject("L", wire::make_sealed(aead, kr.view(), w.rng,
                                      wire::Label::OpReplay, "mallory", "L",
                                      wire::encode(op)));
  w.net.run();

  // Four lines: a clean admit (with the seq-collision guard rekey), then
  // the forged replay answered with the intrusion verdict. Nothing was
  // relayed and no op_replay acceptance line appears.
  const std::string golden =
      "@0    L          reconcile_offer -> mallory    [admit] =1\n"
      "@0    L          rekey           =2\n"
      "@0    L          reconcile_verdict -> mallory    [admit]\n"
      "@0    L          reconcile_verdict -> mallory    [intrusion]\n";
  EXPECT_EQ(strip_trailing_blanks(net::format_event_chart(w.trace.events())),
            golden);
}

// --- An exhausted reconcile budget abandons the heal and falls back to the
// classic drop-state + auto-rejoin path: liveness never hinges on the heal.
TEST(Reconcile, ExhaustedBudgetFallsBackToRejoin) {
  PartitionWorld w(61);
  auto& alice = w.add("alice");
  alice.set_suspect_after(2);
  alice.enable_reconciliation(RetryPolicy::bounded(3));
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  w.join(alice);

  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 8);
  ASSERT_TRUE(alice.disconnected());

  // Stay partitioned past the whole reconcile budget.
  w.settle([&] { return !alice.disconnected(); }, 20);
  EXPECT_FALSE(alice.disconnected()) << "budget spent, heal abandoned";
  EXPECT_FALSE(alice.has_group_key()) << "fallback drops state";
  EXPECT_EQ(w.metrics.counter("L", "alice", "reconcile_abandons_total"), 1u);

  // Once the partition heals, the standard rejoin path recovers the member.
  // The leader still holds alice's stale session (it never probed during
  // the partition), so a heartbeat lets its stall detection clear it before
  // the fresh handshake can be accepted.
  w.injector.heal();
  w.leader.probe_liveness();
  w.settle([&] { return alice.connected(); }, 20);
  EXPECT_TRUE(alice.connected());
  EXPECT_EQ(alice.epoch(), w.leader.epoch());
}

// --- Replay-in-progress discipline: new sends are refused mid-replay (the
// log is already committed to the leader), and queueing past the cap fails.
TEST(Reconcile, OfferInvalidatedWhenLogGrows) {
  PartitionWorld w(71);
  auto& alice = w.add("alice");
  alice.set_suspect_after(2);
  alice.enable_reconciliation(RetryPolicy::every_tick());
  w.join(alice);
  w.injector.partition({"alice"});
  w.settle([&] { return alice.disconnected(); }, 8);

  ASSERT_TRUE(alice.send_data(bytes("a")).ok());
  const auto offers_before =
      w.metrics.counter("L", "alice", "reconcile_offers_total");
  alice.tick();  // re-seals the offer: the cached one covered an empty log
  EXPECT_GT(w.metrics.counter("L", "alice", "reconcile_offers_total"),
            offers_before)
      << "a grown log must invalidate the cached offer";
}

}  // namespace
}  // namespace enclaves::core
