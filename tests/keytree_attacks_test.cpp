// The pinned key-tree break classes (docs/KEYTREE.md attack catalog): the
// subgroup-key-hierarchy mistakes cataloged by the PAPERS.md break papers,
// each mounted against the real Leader/Member protocol over SimNetwork and
// each refused with the right SecurityLedger attribution:
//
//   1. sibling-KEK reuse    — a captured sealed entry from an older update
//                             spliced into a newer one (the carrier KEK is
//                             reused across rotations) → forged_keytree;
//   2. stale-path replay    — a pre-expel KEY_TREE_UPDATE replayed after
//                             the expulsion rotated the path → stale_epoch;
//   3. non-leader forgery   — a structurally valid update claiming a
//                             different leader identity → identity_mismatch
//                             (and a garbage body → malformed);
//   4. quarantined member   — an evictee retaining its revoked leaf/path
//                             keys: its recover request is refused at the
//                             leader (bad_label), its replayed data hits
//                             unknown_sender, and data sealed under the
//                             revoked Kg is refused by members
//                             (aead_open_failure) — who then self-heal.
//
// Every attack also asserts the negative space: the victim keeps its
// session (no eviction-by-refusal), stays on the honest epoch, and the next
// honest rotation still applies.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <memory>
#include <string>
#include <vector>

#include "core/keytree.h"
#include "core/leader.h"
#include "core/member.h"
#include "crypto/aead.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "util/rng.h"
#include "wire/keytree.h"
#include "wire/payloads.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

using obs::EvidenceKind;
using obs::SecurityEvidence;

std::vector<SecurityEvidence> core_entries(const obs::SecurityLedger& ledger) {
  std::vector<SecurityEvidence> out;
  for (const auto& e : ledger.entries())
    if (e.group != "crypto") out.push_back(e);
  return out;
}

// Tree-mode world that also snoops every KEY_TREE_UPDATE broadcast (and
// every GroupData relay) delivered to m0 — the attacker's packet capture.
struct TreeWorld {
  explicit TreeWorld(std::uint64_t seed, int member_count = 4) : rng(seed) {
    LeaderConfig config;
    config.id = "L";
    config.rekey = RekeyPolicy::tree();
    config.keytree_depth = 3;
    leader = std::make_unique<Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
    for (int i = 0; i < member_count; ++i) add("m" + std::to_string(i));
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader->register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [this, raw, id](const wire::Envelope& e) {
      if (id == "m0") {
        if (e.label == wire::Label::KeyTreeUpdate) captured_updates.push_back(e);
        if (e.label == wire::Label::GroupData) captured_data.push_back(e);
      }
      raw->handle(e);
    });
    members[id] = std::move(m);
    return *raw;
  }

  void join_all() {
    for (auto& [id, m] : members) ASSERT_TRUE(m->join().ok()) << id;
    settle();
    for (auto& [id, m] : members) {
      ASSERT_TRUE(m->connected()) << id;
      ASSERT_EQ(m->epoch(), leader->epoch()) << id;
    }
  }

  void settle(int steps = 64) {
    for (int t = 0; t < steps; ++t) {
      net.run(1u << 14);
      leader->tick();
      for (auto& [id, m] : members) m->tick();
      net.run(1u << 14);
    }
  }

  Member& m(const std::string& id) { return *members.at(id); }

  obs::MetricsRegistry metrics;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink{metrics};
  obs::ScopedSecurityLedger ledger_sink{ledger};

  net::SimNetwork net;
  DeterministicRng rng;
  std::unique_ptr<Leader> leader;
  std::map<std::string, std::unique_ptr<Member>> members;
  std::vector<wire::Envelope> captured_updates;
  std::vector<wire::Envelope> captured_data;
};

// --------------------------------------------------------------------------
// 1. Sibling-KEK reuse: splice a captured entry (sealed under a carrier KEK
// that survived across rotations) into a newer update. The chain decrypts —
// the carrier still opens it — but the embedded (node, epoch) binding and
// the confirmation tag expose the reuse. Refused atomically as forged.
TEST(KeyTreeAttacks, SiblingKekReuseSpliceIsForged) {
  TreeWorld w(1);
  w.join_all();
  // Two honest root rotations: same carrier KEKs (the root's children are
  // untouched by a root-only rotation), different epochs — the reuse setup.
  w.leader->rekey();
  w.settle();
  w.leader->rekey();
  w.settle();
  // The leader's anti-entropy plane rebroadcasts the LATEST update, so the
  // capture holds duplicates: select the two epochs by decoding.
  const std::uint64_t honest_epoch = w.m("m0").epoch();
  std::optional<wire::KeyTreeUpdatePayload> old_p, new_p;
  for (const auto& env : w.captured_updates) {
    auto p = wire::decode_keytree_update(env.body);
    ASSERT_TRUE(p.ok());
    if (p->epoch == honest_epoch) new_p = *p;
    if (p->epoch == honest_epoch - 1) old_p = *p;
  }
  ASSERT_TRUE(old_p && new_p);
  w.ledger.clear();

  // Mallory reuses the old sealed entry inside a "fresh" update one epoch
  // ahead (anything <= the member's epoch would be refused as stale before
  // the forgery is even examined).
  wire::KeyTreeUpdatePayload forged = *new_p;
  ASSERT_FALSE(forged.entries.empty());
  ASSERT_FALSE(old_p->entries.empty());
  forged.entries[0] = old_p->entries[0];
  forged.epoch = honest_epoch + 1;
  w.net.inject("m0", wire::Envelope{wire::Label::KeyTreeUpdate, "mallory",
                                    "m0", wire::encode(forged)});
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::forged_keytree);
  EXPECT_EQ(core[0].observer, "m0");
  EXPECT_EQ(core[0].accused, "mallory");
  EXPECT_EQ(core[0].group, "L");
  EXPECT_EQ(w.ledger.suspicion("mallory"), 1u);
  // Refusal is not eviction: m0 keeps its session and honest epoch, and the
  // next honest rotation still applies.
  EXPECT_TRUE(w.m("m0").connected());
  EXPECT_EQ(w.m("m0").epoch(), honest_epoch);
  w.leader->rekey();
  w.settle();
  EXPECT_EQ(w.m("m0").epoch(), w.leader->epoch());
}

// --------------------------------------------------------------------------
// 2. Stale-path replay after expel: the pre-expulsion update re-offered to
// a surviving member. Epoch freshness refuses it BEFORE any decryption, the
// evidence names the replayer, and the session survives (a broadcast replay
// must never be an eviction lever).
TEST(KeyTreeAttacks, StalePathReplayAfterExpelIsStaleEpoch) {
  TreeWorld w(2);
  w.join_all();
  w.leader->rekey();
  w.settle();
  ASSERT_FALSE(w.captured_updates.empty());
  const wire::Envelope pre_expel = w.captured_updates.back();

  ASSERT_TRUE(w.leader->expel("m3", "compromised").ok());
  w.settle();
  const std::uint64_t honest_epoch = w.m("m0").epoch();
  ASSERT_EQ(honest_epoch, w.leader->epoch());
  w.ledger.clear();

  wire::Envelope replay = pre_expel;
  replay.sender = "mallory";
  w.net.inject("m0", replay);
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::stale_epoch);
  EXPECT_EQ(core[0].observer, "m0");
  EXPECT_EQ(core[0].accused, "mallory");
  auto old_p = wire::decode_keytree_update(pre_expel.body);
  ASSERT_TRUE(old_p.ok());
  EXPECT_EQ(core[0].value, old_p->epoch);
  EXPECT_TRUE(w.m("m0").connected());
  EXPECT_EQ(w.m("m0").epoch(), honest_epoch);
}

// --------------------------------------------------------------------------
// 3. Forged subtree update from a non-leader: leader-origin is checked
// before any entry is touched.
TEST(KeyTreeAttacks, NonLeaderUpdateIsIdentityMismatch) {
  TreeWorld w(3);
  w.join_all();
  ASSERT_FALSE(w.captured_updates.empty());
  auto p = wire::decode_keytree_update(w.captured_updates.back().body);
  ASSERT_TRUE(p.ok());
  const std::uint64_t honest_epoch = w.m("m0").epoch();
  w.ledger.clear();

  // Structurally honest update re-issued under mallory's own "leadership".
  wire::KeyTreeUpdatePayload forged = *p;
  forged.l = "mallory";
  forged.epoch = honest_epoch + 1;
  w.net.inject("m0", wire::Envelope{wire::Label::KeyTreeUpdate, "mallory",
                                    "m0", wire::encode(forged)});
  // And a garbage-body variant.
  w.net.inject("m0", wire::Envelope{wire::Label::KeyTreeUpdate, "mallory",
                                    "m0", to_bytes("not a payload")});
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 2u);
  EXPECT_EQ(core[0].kind, EvidenceKind::identity_mismatch);
  EXPECT_EQ(core[0].observer, "m0");
  EXPECT_EQ(core[0].accused, "mallory");
  EXPECT_EQ(core[1].kind, EvidenceKind::malformed);
  EXPECT_EQ(core[1].accused, "mallory");
  EXPECT_EQ(w.ledger.suspicion("mallory"), 2u);
  EXPECT_EQ(w.m("m0").epoch(), honest_epoch);
}

// --------------------------------------------------------------------------
// 4. Quarantined member retaining revoked keys: before the expulsion we
// snapshot everything a dishonest m3 would keep (leaf KEK via the leader's
// diagnostic accessor, the current Kg, a captured data frame). After the
// expulsion every use of that material is refused and attributed.
TEST(KeyTreeAttacks, QuarantinedMemberRevokedKeysAreUseless) {
  TreeWorld w(4);
  w.join_all();
  ASSERT_TRUE(w.m("m1").send_data(to_bytes("pre#1")).ok());
  w.settle();

  // Mallory (= m3, dishonest) hoards her revoked material.
  ASSERT_NE(w.leader->keytree(), nullptr);
  const crypto::GroupKey* leaf = w.leader->keytree()->leaf_kek("m3");
  ASSERT_NE(leaf, nullptr);
  const crypto::GroupKey revoked_leaf = *leaf;
  const crypto::GroupKey revoked_kg = w.leader->group_key();
  ASSERT_FALSE(w.captured_data.empty());
  const wire::Envelope hoarded_frame = w.captured_data.back();

  ASSERT_TRUE(w.leader->expel("m3", "quarantined").ok());
  w.settle();
  const std::uint64_t honest_epoch = w.leader->epoch();
  w.ledger.clear();

  DeterministicRng mallory_rng(999);
  // 4a. KEY_TREE_RECOVER under the revoked leaf KEK: the leader no longer
  // has a leaf for m3 — refused before decryption, attributed to the
  // claimed sender.
  wire::KeyTreeRecoverPayload recover{
      "m3", "L", crypto::ProtocolNonce::random(mallory_rng), honest_epoch};
  w.net.inject("L", wire::make_sealed(crypto::default_aead(),
                                      revoked_leaf.view(), mallory_rng,
                                      wire::Label::KeyTreeRecover, "m3", "L",
                                      wire::encode(recover)));
  w.net.run();
  {
    auto core = core_entries(w.ledger);
    ASSERT_EQ(core.size(), 1u);
    EXPECT_EQ(core[0].kind, EvidenceKind::bad_label);
    EXPECT_EQ(core[0].observer, "L");
    EXPECT_EQ(core[0].accused, "m3");
    EXPECT_EQ(core[0].detail, "keytree recover without a leaf");
  }
  w.ledger.clear();

  // 4b. Replaying a hoarded pre-expel data frame at the leader: the data
  // relay checks membership before anything else, so the frame dies as a
  // relay_reject attributed to the expelled origin.
  wire::Envelope replay = hoarded_frame;
  replay.sender = "m3";  // the relay routes by claimed origin
  w.net.inject("L", replay);
  w.net.run();
  {
    auto core = core_entries(w.ledger);
    ASSERT_EQ(core.size(), 1u);
    EXPECT_EQ(core[0].kind, EvidenceKind::relay_reject);
    EXPECT_EQ(core[0].observer, "L");
    EXPECT_EQ(core[0].accused, "m3");
  }
  w.ledger.clear();

  // 4c. Fresh data sealed under the revoked Kg pushed straight at a member:
  // the expulsion rotated m3's path, so the revoked root (and thus Kg) is
  // dead — the frame does not open, the member ledgers it and self-heals
  // (the failed open doubles as the missed-broadcast symptom, so it asks
  // the leader for its path; with the honest epoch already installed the
  // answer is a harmless refresh).
  wire::GroupDataPayload stale_body{"m3", honest_epoch, 99,
                                    to_bytes("quarantine escape")};
  w.net.inject("m0", wire::make_sealed(crypto::default_aead(),
                                       revoked_kg.view(), mallory_rng,
                                       wire::Label::GroupData, "m3",
                                       wire::kGroupRecipient,
                                       wire::encode(stale_body)));
  w.net.run();
  {
    auto core = core_entries(w.ledger);
    ASSERT_GE(core.size(), 1u);
    EXPECT_EQ(core[0].kind, EvidenceKind::aead_open_failure);
    EXPECT_EQ(core[0].observer, "m0");
    EXPECT_EQ(core[0].accused, "m3");
  }

  // The group is unharmed: everyone still converges and chats.
  w.settle();
  for (const std::string id : {"m0", "m1", "m2"}) {
    EXPECT_TRUE(w.m(id).connected()) << id;
    EXPECT_EQ(w.m(id).epoch(), w.leader->epoch()) << id;
  }
  ASSERT_TRUE(w.m("m0").send_data(to_bytes("post#2")).ok());
  w.settle();
}

}  // namespace
}  // namespace enclaves::core
