// Credential rotation: a password change takes effect at the next
// authentication, never disturbs a running session, and immediately locks
// out holders of the old credential.
#include <gtest/gtest.h>

#include "core/leader.h"
#include "core/member.h"
#include "crypto/password.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

struct RotationWorld {
  RotationWorld()
      : rng(31), leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  std::unique_ptr<Member> make_member(const std::string& id,
                                      crypto::LongTermKey pa) {
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    return m;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
};

crypto::LongTermKey pa_of(const std::string& pw) {
  return crypto::derive_long_term_key("alice", pw, {16, "rotation-test"});
}

TEST(CredentialRotation, NewPasswordWorksOldOneDoesNot) {
  RotationWorld w;
  ASSERT_TRUE(w.leader.register_member("alice", pa_of("old-pw")).ok());
  ASSERT_TRUE(w.leader.update_credential("alice", pa_of("new-pw")).ok());

  auto stale = w.make_member("alice", pa_of("old-pw"));
  ASSERT_TRUE(stale->join().ok());
  w.net.run();
  EXPECT_FALSE(stale->connected()) << "old credential must be dead";
  w.net.detach("alice");

  auto fresh = w.make_member("alice", pa_of("new-pw"));
  ASSERT_TRUE(fresh->join().ok());
  w.net.run();
  EXPECT_TRUE(fresh->connected());
}

TEST(CredentialRotation, RunningSessionSurvivesRotation) {
  RotationWorld w;
  ASSERT_TRUE(w.leader.register_member("alice", pa_of("old-pw")).ok());
  auto alice = w.make_member("alice", pa_of("old-pw"));
  ASSERT_TRUE(alice->join().ok());
  w.net.run();
  ASSERT_TRUE(alice->connected());

  // Rotate mid-session: the session key keeps the session alive.
  ASSERT_TRUE(w.leader.update_credential("alice", pa_of("new-pw")).ok());
  w.leader.broadcast_notice("still there?");
  w.net.run();
  EXPECT_TRUE(alice->connected());
  EXPECT_EQ(w.leader.session("alice")->reject_stats().total(), 0u);

  // But after leaving, only the new password gets back in.
  ASSERT_TRUE(alice->leave().ok());
  w.net.run();
  ASSERT_TRUE(alice->join().ok());
  w.net.run();
  EXPECT_FALSE(alice->connected()) << "client still has the old password";
}

TEST(CredentialRotation, UnknownMemberRejected) {
  RotationWorld w;
  auto s = w.leader.update_credential("ghost", pa_of("x"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::unknown_peer);
}

}  // namespace
}  // namespace enclaves::core
