// Sequence-chart formatter: rendering, filters, caps, handshake shape.
#include <gtest/gtest.h>

#include "core/leader.h"
#include "core/member.h"
#include "net/sim_network.h"
#include "net/trace_chart.h"
#include "util/rng.h"

namespace enclaves::net {
namespace {

std::vector<Packet> tiny_log() {
  std::vector<Packet> log;
  log.push_back({0, "L", {wire::Label::AuthInitReq, "alice", "L",
                          Bytes(10, 0)}});
  log.push_back({1, "alice", {wire::Label::AuthKeyDist, "L", "alice",
                              Bytes(20, 0)}});
  log.push_back({2, "bob", {wire::Label::GroupData, "alice", "*",
                            Bytes(5, 0)}});
  return log;
}

TEST(TraceChart, RendersOneLinePerPacket) {
  auto chart = format_sequence_chart(tiny_log());
  EXPECT_NE(chart.find("alice"), std::string::npos);
  EXPECT_NE(chart.find("AuthInitReq (10B)"), std::string::npos);
  EXPECT_NE(chart.find("AuthKeyDist (20B)"), std::string::npos);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
}

TEST(TraceChart, FilterSelectsPackets) {
  ChartOptions options;
  options.filter = [](const Packet& p) {
    return p.envelope.label == wire::Label::GroupData;
  };
  auto chart = format_sequence_chart(tiny_log(), options);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 1);
  EXPECT_NE(chart.find("GroupData"), std::string::npos);
}

TEST(TraceChart, CapTruncatesWithCount) {
  ChartOptions options;
  options.max_packets = 1;
  auto chart = format_sequence_chart(tiny_log(), options);
  EXPECT_NE(chart.find("... 2 more"), std::string::npos);
}

TEST(TraceChart, MismatchedRecipientFlagged) {
  std::vector<Packet> log;
  log.push_back({7, "bob", {wire::Label::AdminMsg, "L", "alice",
                            Bytes(1, 0)}});  // delivered to bob, says alice
  auto chart = format_sequence_chart(log);
  EXPECT_NE(chart.find("[recipient field: alice]"), std::string::npos);
}

TEST(TraceChart, AgentChartShowsBothDirections) {
  auto chart = format_agent_chart(tiny_log(), "alice");
  // alice sends #0 and #2, receives #1; all three touch alice.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
  auto bob_chart = format_agent_chart(tiny_log(), "bob");
  EXPECT_EQ(std::count(bob_chart.begin(), bob_chart.end(), '\n'), 1);
}

TEST(TraceChart, RealHandshakeHasPaperShape) {
  DeterministicRng rng(4);
  SimNetwork net;
  core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::manual()},
                      rng);
  leader.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("L", [&leader](const wire::Envelope& e) { leader.handle(e); });
  auto pa = crypto::LongTermKey::random(rng);
  ASSERT_TRUE(leader.register_member("alice", pa).ok());
  core::Member alice("alice", "L", pa, rng);
  alice.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("alice", [&alice](const wire::Envelope& e) { alice.handle(e); });
  ASSERT_TRUE(alice.join().ok());
  net.run();

  auto chart = format_sequence_chart(net.log());
  // The Section 3.2 shape: init, key dist, ack, then admin traffic.
  auto pos_init = chart.find("AuthInitReq");
  auto pos_dist = chart.find("AuthKeyDist");
  auto pos_ack = chart.find("AuthAckKey");
  auto pos_admin = chart.find("AdminMsg");
  ASSERT_NE(pos_init, std::string::npos);
  ASSERT_NE(pos_dist, std::string::npos);
  ASSERT_NE(pos_ack, std::string::npos);
  ASSERT_NE(pos_admin, std::string::npos);
  EXPECT_LT(pos_init, pos_dist);
  EXPECT_LT(pos_dist, pos_ack);
  EXPECT_LT(pos_ack, pos_admin);
}

}  // namespace
}  // namespace enclaves::net
