// HA subsystem unit tests: replication payload codecs, the ReplLog, the
// active->standby delta stream (mirror equality, gap repair, duplicate
// suppression, retransmission), promotion with epoch fencing, deposition of
// the old leader, and the member-side epoch fence.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/leader.h"
#include "core/member.h"
#include "core/member_session.h"
#include "ha/failover.h"
#include "ha/repl_log.h"
#include "ha/replicator.h"
#include "ha/standby.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "wire/repl.h"
#include "wire/seal.h"

namespace enclaves::ha {
namespace {

using core::Leader;
using core::LeaderConfig;
using core::Member;
using core::RekeyPolicy;
using core::RetryPolicy;

// ---------------------------------------------------------------------------
// Codecs.

TEST(ReplCodec, RoundTrips) {
  DeterministicRng rng(1);
  wire::ReplDeltaPayload delta{7, 42, wire::ReplDeltaKind::credential_add,
                               "alice", crypto::LongTermKey::random(rng)};
  auto d = wire::decode_repl_delta(wire::encode(delta));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, delta);

  wire::ReplSnapshotPayload snap{3, 9, to_bytes("blob")};
  auto s = wire::decode_repl_snapshot(wire::encode(snap));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, snap);

  wire::ReplAckPayload ack{5, 2, true, false};
  auto a = wire::decode_repl_ack(wire::encode(ack));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, ack);

  wire::ReplHeartbeatPayload hb{11, 13};
  auto h = wire::decode_repl_heartbeat(wire::encode(hb));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, hb);
}

TEST(ReplCodec, RejectsTrailingBytes) {
  DeterministicRng rng(2);
  wire::ReplDeltaPayload delta{1, 1, wire::ReplDeltaKind::rekey, "", {}};
  wire::ReplSnapshotPayload snap{1, 1, to_bytes("x")};
  wire::ReplAckPayload ack{1, 1, false, false};
  wire::ReplHeartbeatPayload hb{1, 1};
  for (Bytes raw : {wire::encode(delta), wire::encode(snap),
                    wire::encode(ack), wire::encode(hb)}) {
    raw.push_back(0x00);
    EXPECT_FALSE(wire::decode_repl_delta(raw).ok());
    EXPECT_FALSE(wire::decode_repl_snapshot(raw).ok());
    EXPECT_FALSE(wire::decode_repl_ack(raw).ok());
    EXPECT_FALSE(wire::decode_repl_heartbeat(raw).ok());
  }
}

TEST(ReplCodec, RejectsUnknownDeltaKind) {
  wire::ReplDeltaPayload delta{1, 1, static_cast<wire::ReplDeltaKind>(9),
                               "", {}};
  EXPECT_FALSE(wire::decode_repl_delta(wire::encode(delta)).ok());
  EXPECT_FALSE(wire::is_known_repl_delta_kind(0));
  EXPECT_FALSE(wire::is_known_repl_delta_kind(7));
  EXPECT_TRUE(wire::is_known_repl_delta_kind(1));
  EXPECT_TRUE(wire::is_known_repl_delta_kind(6));
}

TEST(ReplCodec, CrossDecodeRejected) {
  // Each payload family carries a distinct type octet; feeding one family's
  // bytes to another family's decoder must fail, not mis-parse.
  wire::ReplAckPayload ack{1, 1, false, false};
  EXPECT_FALSE(wire::decode_repl_delta(wire::encode(ack)).ok());
  EXPECT_FALSE(wire::decode_repl_heartbeat(wire::encode(ack)).ok());
}

// ---------------------------------------------------------------------------
// ReplLog.

TEST(ReplLog, AssignsSequencesAndPrunesOnAck) {
  ReplLog log;
  EXPECT_EQ(log.head(), 0u);
  wire::ReplDeltaPayload d;
  d.kind = wire::ReplDeltaKind::rekey;
  EXPECT_EQ(log.append(d), 1u);
  EXPECT_EQ(log.append(d), 2u);
  EXPECT_EQ(log.append(d), 3u);
  EXPECT_EQ(log.head(), 3u);
  EXPECT_EQ(log.unacked().size(), 3u);
  EXPECT_EQ(log.unacked()[0]->seq, 1u);

  log.ack(2);
  EXPECT_EQ(log.acked(), 2u);
  ASSERT_EQ(log.unacked().size(), 1u);
  EXPECT_EQ(log.unacked()[0]->seq, 3u);
  EXPECT_EQ(log.find(1), nullptr) << "acked entries are pruned";
  ASSERT_NE(log.find(3), nullptr);

  log.ack(1);  // stale ack never regresses
  EXPECT_EQ(log.acked(), 2u);
  log.ack(99);  // beyond head: clamped, not trusted
  EXPECT_EQ(log.acked(), 3u);
  EXPECT_EQ(log.size(), 0u);
}

// ---------------------------------------------------------------------------
// Replication world: active leader + replicator streaming to a standby over
// a SimNetwork.

struct ReplWorld {
  explicit ReplWorld(std::uint64_t seed, std::uint64_t snapshot_interval = 32)
      : rng(seed),
        repl_key(crypto::SessionKey::random(rng)),
        leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng) {
    leader.set_send(sender());

    ReplicatorConfig rc;
    rc.standby_id = "L2";
    rc.repl_key = repl_key;
    rc.snapshot_interval = snapshot_interval;
    rc.heartbeat_interval = 2;
    replicator = std::make_unique<LeaderReplicator>(leader, rc, rng);
    replicator->set_send(sender());

    StandbyConfig sc;
    sc.id = "L2";
    sc.active_id = "L";
    sc.repl_key = repl_key;
    standby = std::make_unique<StandbyLeader>(sc, rng);
    standby->set_send(sender());

    net.attach("L", [this](const wire::Envelope& e) {
      if (e.label == wire::Label::ReplAck)
        replicator->handle(e);
      else
        leader.handle(e);
    });
    net.attach("L2", [this](const wire::Envelope& e) { standby->handle(e); });
  }

  core::SendFn sender() {
    return [this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    };
  }

  obs::MetricsRegistry metrics;
  obs::ScopedMetricsSink metrics_sink{metrics};
  net::SimNetwork net;
  DeterministicRng rng;
  crypto::SessionKey repl_key;
  Leader leader;
  std::unique_ptr<LeaderReplicator> replicator;
  std::unique_ptr<StandbyLeader> standby;
};

TEST(Replication, MirrorsActiveStateAtEveryReplicatedPoint) {
  ReplWorld w(10);
  w.replicator->start();
  w.net.run();
  ASSERT_TRUE(w.standby->has_baseline());
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());

  // After EVERY admin-state change the standby's reconstruction must equal
  // the active's crash snapshot exactly — this is the failover guarantee.
  DeterministicRng keys(99);
  for (const char* id : {"alice", "bob", "carol"}) {
    ASSERT_TRUE(
        w.leader.register_member(id, crypto::LongTermKey::random(keys)).ok());
    w.net.run();
    EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot()) << id;
  }
  ASSERT_TRUE(
      w.leader.update_credential("bob", crypto::LongTermKey::random(keys))
          .ok());
  w.net.run();
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());

  w.leader.rekey();
  w.net.run();
  w.leader.rekey();
  w.net.run();
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());
  EXPECT_EQ(w.standby->epoch(), 2u);
  EXPECT_EQ(w.standby->applied_seq(), w.replicator->head());
  EXPECT_EQ(w.replicator->lag(), 0u) << "cumulative acks caught up";

  EXPECT_EQ(w.metrics.counter("ha", "L", "repl_deltas_total"),
            w.replicator->head());
  EXPECT_GE(w.metrics.counter("ha", "L2", "repl_deltas_total"),
            w.standby->stats().deltas_applied);
}

TEST(Replication, GapRepairedBySnapshotResync) {
  ReplWorld w(11);
  w.replicator->start();
  w.net.run();

  // Drop the first delta on the wire; the second arrives out of order.
  int deltas_seen = 0;
  w.net.set_tap([&deltas_seen](const net::Packet& p) {
    if (p.envelope.label == wire::Label::ReplDelta && ++deltas_seen == 1)
      return net::TapVerdict::drop;
    return net::TapVerdict::deliver;
  });
  DeterministicRng keys(5);
  ASSERT_TRUE(
      w.leader.register_member("alice", crypto::LongTermKey::random(keys))
          .ok());
  w.net.run();
  EXPECT_EQ(w.standby->applied_seq(), 0u) << "delta 1 was dropped";

  ASSERT_TRUE(
      w.leader.register_member("bob", crypto::LongTermKey::random(keys)).ok());
  w.net.run();  // delta 2 -> gap ack -> snapshot resync -> caught up
  EXPECT_GE(w.standby->stats().gaps_detected, 1u);
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());
  EXPECT_GE(w.metrics.counter("ha", "L2", "repl_gaps_total"), 1u);
  EXPECT_GE(w.metrics.counter("ha", "L", "repl_gaps_total"), 1u);
}

TEST(Replication, LostDeltaRepairedByRetransmission) {
  ReplWorld w(12);
  w.replicator->start();
  w.net.run();

  // Drop the only delta; with no later traffic the repair must come from
  // the replicator's own retry schedule, not from a gap report.
  int deltas_seen = 0;
  w.net.set_tap([&deltas_seen](const net::Packet& p) {
    if (p.envelope.label == wire::Label::ReplDelta && ++deltas_seen == 1)
      return net::TapVerdict::drop;
    return net::TapVerdict::deliver;
  });
  DeterministicRng keys(6);
  ASSERT_TRUE(
      w.leader.register_member("alice", crypto::LongTermKey::random(keys))
          .ok());
  w.net.run();
  EXPECT_EQ(w.standby->applied_seq(), 0u);
  EXPECT_EQ(w.replicator->lag(), 1u);

  for (int t = 0; t < 4 && w.replicator->lag() > 0; ++t) {
    w.replicator->tick();
    w.net.run();
  }
  EXPECT_EQ(w.replicator->lag(), 0u);
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());
}

TEST(Replication, DuplicateDeltasSuppressed) {
  ReplWorld w(13);
  w.replicator->start();
  w.net.run();

  std::optional<wire::Envelope> captured;
  w.net.set_tap([&captured](const net::Packet& p) {
    if (p.envelope.label == wire::Label::ReplDelta && !captured)
      captured = p.envelope;
    return net::TapVerdict::deliver;
  });
  DeterministicRng keys(7);
  ASSERT_TRUE(
      w.leader.register_member("alice", crypto::LongTermKey::random(keys))
          .ok());
  w.net.run();
  ASSERT_TRUE(captured.has_value());
  const auto state_before = w.standby->snapshot();

  w.net.inject("L2", *captured);  // byte-identical replay
  w.net.run();
  EXPECT_GE(w.standby->stats().duplicates, 1u);
  EXPECT_EQ(w.standby->snapshot(), state_before) << "replay changed state";
  EXPECT_EQ(w.metrics.counter("ha", "L2", "repl_duplicates_total"), 1u);
}

TEST(Replication, ForgedStreamRejectedWithoutEffect) {
  ReplWorld w(14);
  w.replicator->start();
  w.net.run();
  const auto state_before = w.standby->snapshot();

  // An attacker without the replication key cannot feed the standby.
  DeterministicRng attacker(666);
  wire::ReplDeltaPayload forged{0, 1, wire::ReplDeltaKind::credential_add,
                                "mallory",
                                crypto::LongTermKey::random(attacker)};
  auto wrong_key = crypto::SessionKey::random(attacker);
  w.net.inject("L2", wire::make_sealed(crypto::default_aead(),
                                       wrong_key.view(), attacker,
                                       wire::Label::ReplDelta, "L", "L2",
                                       wire::encode(forged)));
  w.net.run();
  EXPECT_EQ(w.standby->snapshot(), state_before);
  EXPECT_GE(w.standby->stats().rejects, 1u);
}

TEST(Replication, PeriodicSnapshotCompaction) {
  ReplWorld w(15, /*snapshot_interval=*/3);
  w.replicator->start();
  w.net.run();
  const std::uint64_t baselines_before =
      w.metrics.counter("ha", "L2", "repl_snapshots_total");

  DeterministicRng keys(8);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(w.leader
                    .register_member("m" + std::to_string(i),
                                     crypto::LongTermKey::random(keys))
                    .ok());
    w.net.run();
  }
  // 7 deltas at interval 3 -> at least 2 fresh baselines beyond the opener.
  EXPECT_GE(w.metrics.counter("ha", "L2", "repl_snapshots_total"),
            baselines_before + 2);
  EXPECT_EQ(w.standby->snapshot(), w.leader.snapshot());
}

// ---------------------------------------------------------------------------
// Promotion, fencing, deposition.

TEST(Failover, PromotionFencesEpochAndInstallsCredentials) {
  ReplWorld w(20);
  w.replicator->start();
  w.net.run();

  DeterministicRng keys(9);
  auto pa = crypto::LongTermKey::random(keys);
  ASSERT_TRUE(w.leader.register_member("alice", pa).ok());
  w.leader.rekey();  // epoch 1
  w.net.run();
  ASSERT_EQ(w.standby->epoch(), 1u);

  FailoverConfig fc;
  fc.suspect_after = 3;
  fc.epoch_fence = 1024;
  fc.promoted = LeaderConfig{"L2", RekeyPolicy::strict()};
  FailoverController controller(*w.standby, fc);

  // Silence from the active: the controller must fire exactly once.
  std::unique_ptr<Leader> promoted;
  bool hook_fired = false;
  controller.on_promote = [&hook_fired](Leader&) { hook_fired = true; };
  for (int t = 0; t < 6; ++t) {
    if (auto l = controller.tick()) promoted = std::move(l);
  }
  ASSERT_TRUE(promoted);
  EXPECT_TRUE(hook_fired);
  EXPECT_TRUE(controller.fired());
  EXPECT_TRUE(w.standby->promoted());
  EXPECT_EQ(w.standby->fenced_epoch(), 1u + 1024u);
  EXPECT_EQ(promoted->epoch(), 1u + 1024u) << "epoch floor installed";
  EXPECT_EQ(w.metrics.counter("ha", "L2", "promotions_total"), 1u);

  // The replicated credential works at the promoted leader: the survivor
  // re-authenticates with the same Pa and gets a fenced-fresh group key.
  promoted->set_send(w.sender());
  w.net.attach("L2", [&](const wire::Envelope& e) {
    if (e.label == wire::Label::ReplDelta ||
        e.label == wire::Label::ReplSnapshot ||
        e.label == wire::Label::ReplHeartbeat)
      w.standby->handle(e);
    else
      promoted->handle(e);
  });
  Member alice("alice", "L2", pa, w.rng);
  alice.set_send(w.sender());
  w.net.attach("alice", [&alice](const wire::Envelope& e) { alice.handle(e); });
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  EXPECT_GT(alice.epoch(), 1024u) << "group key must be above the fence";
  EXPECT_EQ(alice.epoch_floor(), alice.epoch());

  // The old incarnation resurfaces and replicates: the standby answers with
  // the fence and the replicator declares itself deposed.
  std::uint64_t deposed_epoch = 0;
  w.replicator->on_deposed = [&deposed_epoch](std::uint64_t e) {
    deposed_epoch = e;
  };
  w.leader.rekey();  // emits a delta to L2
  w.net.run();
  EXPECT_TRUE(w.replicator->deposed());
  EXPECT_EQ(deposed_epoch, 1u + 1024u);
  EXPECT_EQ(w.metrics.counter("ha", "L", "deposed_total"), 1u);

  // Deposed means silent: no further replication traffic.
  const std::uint64_t sent_before = w.net.packets_sent();
  w.leader.rekey();
  for (int t = 0; t < 4; ++t) w.replicator->tick();
  w.net.run();
  EXPECT_EQ(w.net.packets_sent(), sent_before);
}

TEST(Failover, ControllerWaitsForBaseline) {
  DeterministicRng rng(21);
  StandbyConfig sc;
  sc.repl_key = crypto::SessionKey::random(rng);
  StandbyLeader standby(sc, rng);

  FailoverConfig fc;
  fc.suspect_after = 2;
  FailoverController controller(standby, fc);
  for (int t = 0; t < 10; ++t)
    EXPECT_EQ(controller.tick(), nullptr)
        << "promoted from nothing at tick " << t;
  EXPECT_FALSE(controller.fired());
}

TEST(Failover, RecoveryTimeHistogramRecordsOnce) {
  ReplWorld w(22);
  w.replicator->start();
  w.net.run();
  FailoverConfig fc;
  fc.suspect_after = 2;
  fc.promoted = LeaderConfig{"L2", RekeyPolicy::strict()};
  FailoverController controller(*w.standby, fc);

  controller.record_recovery(50);  // before promotion: ignored
  std::unique_ptr<Leader> promoted;
  for (int t = 0; t < 4 && !promoted; ++t) promoted = controller.tick();
  ASSERT_TRUE(promoted);
  const Tick at = *controller.promoted_at();
  controller.record_recovery(at + 7);
  controller.record_recovery(at + 9);  // second call: ignored
  auto hist = w.metrics.histogram("ha", "L2", "time_to_recovery_ticks");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_EQ(hist.sum, 7u);
}

TEST(Failover, StandbyPromoteGuards) {
  DeterministicRng rng(23);
  StandbyConfig sc;
  sc.repl_key = crypto::SessionKey::random(rng);
  StandbyLeader standby(sc, rng);
  EXPECT_FALSE(standby.promote(LeaderConfig{}, 1024).ok())
      << "no baseline, nothing to promote";
}

// ---------------------------------------------------------------------------
// Member-side epoch fence.

TEST(MemberSessionRetarget, OnlyWhileNotConnected) {
  DeterministicRng rng(30);
  auto pa = crypto::LongTermKey::random(rng);
  core::MemberSession s("alice", "L", pa, rng);
  ASSERT_TRUE(s.retarget("L2").ok());
  EXPECT_EQ(s.leader_id(), "L2");
  ASSERT_TRUE(s.start_join().ok());
  auto r = s.retarget("L3");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::unexpected);
  EXPECT_EQ(s.leader_id(), "L2");
}

// A member that held a high-epoch group key refuses a lower-epoch key from
// a different (deposed or stale) leader: the split-brain guard, end to end.
TEST(MemberFence, RejectsStaleEpochFromDeposedLeader) {
  DeterministicRng rng(31);
  net::SimNetwork net;
  auto pa = crypto::LongTermKey::random(rng);

  Leader high(LeaderConfig{"Lhigh", RekeyPolicy::strict()}, rng);
  Leader low(LeaderConfig{"Llow", RekeyPolicy::strict()}, rng);
  for (Leader* l : {&high, &low}) {
    l->set_send([&net](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    ASSERT_TRUE(l->register_member("alice", pa).ok());
  }
  net.attach("Lhigh", [&high](const wire::Envelope& e) { high.handle(e); });
  net.attach("Llow", [&low](const wire::Envelope& e) { low.handle(e); });
  for (int i = 0; i < 5; ++i) high.rekey();  // Lhigh's epoch races ahead

  Member alice("alice", "Lhigh", pa, rng);
  alice.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  alice.set_failover_targets({"Lhigh", "Llow"});
  alice.set_retry_policy(RetryPolicy::bounded(3));
  alice.set_suspect_after(3);
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  std::vector<std::uint64_t> accepted_epochs;
  alice.set_event_handler([&accepted_epochs](const core::GroupEvent& ev) {
    if (const auto* e = std::get_if<core::EpochChanged>(&ev))
      accepted_epochs.push_back(e->epoch);
  });
  net.attach("alice", [&alice](const wire::Envelope& e) { alice.handle(e); });

  ASSERT_TRUE(alice.join().ok());
  net.run();
  ASSERT_TRUE(alice.connected());
  const std::uint64_t high_epoch = alice.epoch();
  ASSERT_GE(high_epoch, 6u);
  EXPECT_EQ(alice.epoch_floor(), high_epoch);

  // Lhigh dies; suspicion fires; the failover cycle retargets alice at
  // Llow, whose key is epochs behind — the fence must refuse it.
  net.detach("Lhigh");
  for (int t = 0; t < 12 && alice.epochs_fenced() == 0; ++t) {
    alice.tick();
    net.run();
  }
  EXPECT_GE(alice.epochs_fenced(), 1u);
  EXPECT_EQ(alice.epoch_floor(), high_epoch) << "fence must not regress";
  EXPECT_FALSE(alice.has_group_key()) << "stale key must not be installed";
  for (std::size_t i = 1; i < accepted_epochs.size(); ++i)
    EXPECT_LT(accepted_epochs[i - 1], accepted_epochs[i])
        << "an accepted epoch regressed: split brain";
  for (std::uint64_t e : accepted_epochs) EXPECT_GE(high_epoch, e);
}

}  // namespace
}  // namespace enclaves::ha
