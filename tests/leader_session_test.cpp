// LeaderSession (Figure 3) unit tests: per-state acceptance, queueing
// discipline (stop-and-wait), snd log semantics, Oops hook.
#include <gtest/gtest.h>

#include "core/leader_session.h"
#include "core/member_session.h"
#include "util/rng.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

using LState = LeaderSession::State;

struct LeaderFsm : ::testing::Test {
  LeaderFsm()
      : rng(11),
        pa(crypto::LongTermKey::random(rng)),
        member("alice", "L", pa, rng),
        leader("L", "alice", pa, rng) {}

  void handshake() {
    auto init = member.start_join();
    auto dist = leader.handle(*init);
    ASSERT_TRUE(dist.ok());
    auto ack = member.handle(*dist->reply);
    ASSERT_TRUE(ack.ok());
    auto done = leader.handle(*ack->reply);
    ASSERT_TRUE(done.ok() && done->authenticated);
  }

  DeterministicRng rng;
  crypto::LongTermKey pa;
  MemberSession member;
  LeaderSession leader;
};

TEST_F(LeaderFsm, AuthInitProducesKeyDist) {
  auto init = member.start_join();
  auto out = leader.handle(*init);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->reply.has_value());
  EXPECT_EQ(out->reply->label, wire::Label::AuthKeyDist);
  EXPECT_EQ(leader.state(), LState::waiting_for_key_ack);
  EXPECT_FALSE(out->authenticated);
}

TEST_F(LeaderFsm, AuthInitForgedUnderWrongKeyRejected) {
  Bytes junk = rng.bytes(32);
  wire::AuthInitPayload lie{"alice", "L", crypto::ProtocolNonce{}};
  auto forged = wire::make_sealed(crypto::default_aead(), junk, rng,
                                  wire::Label::AuthInitReq, "alice", "L",
                                  wire::encode(lie));
  auto r = leader.handle(forged);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::auth_failed);
  EXPECT_EQ(leader.state(), LState::not_connected);
}

TEST_F(LeaderFsm, AuthInitWithWrongIdentitiesRejected) {
  wire::AuthInitPayload lie{"bob", "L", crypto::ProtocolNonce{}};
  auto forged = wire::make_sealed(crypto::default_aead(), pa.view(), rng,
                                  wire::Label::AuthInitReq, "alice", "L",
                                  wire::encode(lie));
  auto r = leader.handle(forged);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::identity_mismatch);
}

TEST_F(LeaderFsm, DuplicateAuthInitAnsweredIdempotently) {
  // Byte-identical re-send of the pending AuthInitReq (the member believes
  // its request or our reply was lost): re-answer with the CACHED key
  // distribution — same bytes, no new session, no new ciphertext.
  auto init = member.start_join();
  auto first = leader.handle(*init);
  ASSERT_TRUE(first.ok());
  auto replay = leader.handle(*init);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->duplicate_retransmit);
  ASSERT_TRUE(replay->reply.has_value());
  EXPECT_EQ(replay->reply->body, first->reply->body);
  EXPECT_EQ(leader.state(), LState::waiting_for_key_ack);
}

TEST_F(LeaderFsm, FreshAuthInitWhileInSessionSupersedes) {
  // A FRESH authentic AuthInitReq while a session (or handshake) is live
  // supersedes it: only the member can mint one under Pa, and a member
  // re-offering a handshake has by definition lost its session state
  // (crash, or its ReqClose never arrived). Refusing it would deadlock.
  auto init = member.start_join();
  ASSERT_TRUE(leader.handle(*init).ok());
  MemberSession other("alice", "L", pa, rng);
  auto other_init = other.start_join();
  auto r = leader.handle(*other_init);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->superseded);
  EXPECT_TRUE(r->closed);
  EXPECT_EQ(leader.state(), LState::waiting_for_key_ack);
  // ...and the superseded handshake's opener is now a dead replay.
  auto replay = leader.handle(*init);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.code(), Errc::stale);
}

TEST_F(LeaderFsm, ReplayedAuthInitAfterCloseIsRejectedStale) {
  // The paper's Q12 situation: a replayed AuthInitReq used to re-enter the
  // authentication protocol as a "ghost handshake" — safe but observable,
  // and it blocked the slot until operations cleared it. The per-member N1
  // replay fence closes that hole: every accepted handshake opener is
  // remembered, so the replay dies as stale and the slot stays free.
  auto init = member.start_join();
  auto dist = leader.handle(*init);
  auto ack = member.handle(*dist->reply);
  ASSERT_TRUE(leader.handle(*ack->reply).ok());
  auto close = member.request_close();
  ASSERT_TRUE(leader.handle(*close).ok());
  ASSERT_EQ(leader.state(), LState::not_connected);

  auto ghost = leader.handle(*init);  // replay of the original request
  ASSERT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.code(), Errc::stale);
  EXPECT_EQ(leader.state(), LState::not_connected);
}

TEST_F(LeaderFsm, AuthAckWithWrongNonceRejected) {
  auto init = member.start_join();
  auto dist = leader.handle(*init);
  auto ack = member.handle(*dist->reply);
  ASSERT_TRUE(ack.ok());
  // Forge an ack under the correct session key but a zero nonce.
  wire::AuthAckPayload lie{crypto::ProtocolNonce{}, crypto::ProtocolNonce{}};
  auto forged = wire::make_sealed(crypto::default_aead(),
                                  member.session_key().view(), rng,
                                  wire::Label::AuthAckKey, "alice", "L",
                                  wire::encode(lie));
  auto r = leader.handle(forged);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::stale);
  EXPECT_EQ(leader.state(), LState::waiting_for_key_ack);
}

TEST_F(LeaderFsm, SubmitAdminWhenIdleSendsImmediately) {
  handshake();
  auto env = leader.submit_admin(wire::Notice{"now"});
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->label, wire::Label::AdminMsg);
  EXPECT_EQ(leader.state(), LState::waiting_for_ack);
  EXPECT_EQ(leader.snd_log().size(), 1u);
}

TEST_F(LeaderFsm, SubmitAdminWhileWaitingQueues) {
  handshake();
  ASSERT_TRUE(leader.submit_admin(wire::Notice{"1"}).has_value());
  EXPECT_FALSE(leader.submit_admin(wire::Notice{"2"}).has_value());
  EXPECT_FALSE(leader.submit_admin(wire::Notice{"3"}).has_value());
  EXPECT_EQ(leader.queue_depth(), 2u);
  EXPECT_EQ(leader.snd_log().size(), 1u) << "queued != sent";
}

TEST_F(LeaderFsm, AckReleasesNextQueuedAdmin) {
  handshake();
  auto first = leader.submit_admin(wire::Notice{"1"});
  leader.submit_admin(wire::Notice{"2"});
  auto out1 = member.handle(*first);
  auto done = leader.handle(*out1->reply);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->acked);
  ASSERT_TRUE(done->reply.has_value()) << "next admin goes out on ack";
  EXPECT_EQ(leader.snd_log().size(), 2u);
  EXPECT_EQ(leader.queue_depth(), 0u);

  auto out2 = member.handle(*done->reply);
  ASSERT_TRUE(out2.ok());
  ASSERT_TRUE(leader.handle(*out2->reply).ok());
  EXPECT_EQ(leader.state(), LState::connected);
  EXPECT_EQ(leader.acked_count(), 2u);
}

TEST_F(LeaderFsm, AdminQueuedDuringHandshakeFlushesOnAuth) {
  auto init = member.start_join();
  auto dist = leader.handle(*init);
  // Submit before the handshake completes: must queue.
  EXPECT_FALSE(leader.submit_admin(wire::Notice{"early"}).has_value());
  auto ack = member.handle(*dist->reply);
  auto done = leader.handle(*ack->reply);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->authenticated);
  ASSERT_TRUE(done->reply.has_value()) << "queued admin sent on auth";
  EXPECT_EQ(done->reply->label, wire::Label::AdminMsg);
}

TEST_F(LeaderFsm, ReplayedAckRejected) {
  handshake();
  auto admin = leader.submit_admin(wire::Notice{"x"});
  auto out = member.handle(*admin);
  ASSERT_TRUE(leader.handle(*out->reply).ok());
  auto replay = leader.handle(*out->reply);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.code(), Errc::unexpected);  // no longer waiting
}

TEST_F(LeaderFsm, StaleAckWhileWaitingRejected) {
  handshake();
  auto admin1 = leader.submit_admin(wire::Notice{"a"});
  auto out1 = member.handle(*admin1);
  ASSERT_TRUE(leader.handle(*out1->reply).ok());
  auto admin2 = leader.submit_admin(wire::Notice{"b"});
  ASSERT_TRUE(admin2.has_value());
  // Replay the FIRST ack while waiting for the second.
  auto r = leader.handle(*out1->reply);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::stale);
  EXPECT_EQ(leader.state(), LState::waiting_for_ack);
}

TEST_F(LeaderFsm, ReqCloseFromConnectedFiresOops) {
  handshake();
  bool oops_fired = false;
  Bytes leaked;
  leader.on_session_closed = [&](const crypto::SessionKey& k) {
    oops_fired = true;
    leaked = k.to_bytes();
  };
  auto close = member.request_close();
  auto done = leader.handle(*close);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->closed);
  EXPECT_TRUE(oops_fired);
  EXPECT_EQ(leaked.size(), crypto::kKeyBytes);
  EXPECT_TRUE(leader.snd_log().empty()) << "snd_A emptied on close";
}

TEST_F(LeaderFsm, ReqCloseWhileWaitingForAckAccepted) {
  handshake();
  ASSERT_TRUE(leader.submit_admin(wire::Notice{"pending"}).has_value());
  auto close = member.request_close();
  auto done = leader.handle(*close);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->closed);
  EXPECT_EQ(leader.state(), LState::not_connected);
}

TEST_F(LeaderFsm, ForceCloseReturnsKeyWithoutOops) {
  handshake();
  bool oops_fired = false;
  leader.on_session_closed = [&](const crypto::SessionKey&) {
    oops_fired = true;
  };
  auto key = leader.force_close();
  ASSERT_TRUE(key.has_value());
  EXPECT_FALSE(oops_fired) << "administrative close must not publish Ka";
  EXPECT_EQ(leader.state(), LState::not_connected);
  EXPECT_FALSE(leader.force_close().has_value()) << "idempotent";
}

TEST_F(LeaderFsm, OutstandingExposedForRetransmission) {
  handshake();
  EXPECT_FALSE(leader.outstanding().has_value());
  auto admin = leader.submit_admin(wire::Notice{"r"});
  ASSERT_TRUE(leader.outstanding().has_value());
  EXPECT_EQ(leader.outstanding()->body, admin->body);
}

TEST(LeaderSessionStates, ToStringCoversAll) {
  EXPECT_STREQ(to_string(LState::not_connected), "NotConnected");
  EXPECT_STREQ(to_string(LState::waiting_for_key_ack), "WaitingForKeyAck");
  EXPECT_STREQ(to_string(LState::connected), "Connected");
  EXPECT_STREQ(to_string(LState::waiting_for_ack), "WaitingForAck");
}

}  // namespace
}  // namespace enclaves::core
