// GroupChat application layer: typed messages, presence, history bounds,
// hostile-payload tolerance, roster tracking.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app/group_chat.h"
#include "core/leader.h"
#include "net/sim_network.h"
#include "util/rng.h"
#include "wire/seal.h"

namespace enclaves::app {
namespace {

TEST(ChatCodec, RoundTripText) {
  ChatMessage m{ChatKind::text, "alice", "hello there", 7};
  auto back = decode_chat_message(encode(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(ChatCodec, RoundTripPresence) {
  ChatMessage m{ChatKind::presence, "bob", "away", 0};
  auto back = decode_chat_message(encode(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(ChatCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_chat_message(to_bytes("not a chat message")).ok());
  EXPECT_FALSE(decode_chat_message({}).ok());
  Bytes bad_kind = encode(ChatMessage{ChatKind::text, "a", "b", 0});
  bad_kind[1] = 0x7F;
  EXPECT_FALSE(decode_chat_message(bad_kind).ok());
}

struct ChatWorld {
  explicit ChatWorld(std::uint64_t seed)
      : rng(seed),
        leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  GroupChat& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<core::Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    auto chat = std::make_unique<GroupChat>(*raw);
    auto* chat_raw = chat.get();
    members[id] = std::move(m);
    chats[id] = std::move(chat);
    EXPECT_TRUE(raw->join().ok());
    net.run();
    return *chat_raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  core::Leader leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
  std::map<std::string, std::unique_ptr<GroupChat>> chats;
};

TEST(GroupChat, PostReachesEveryoneInOrder) {
  ChatWorld w(1);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  auto& carol = w.add("carol");

  ASSERT_TRUE(alice.post("one").ok());
  w.net.run();
  ASSERT_TRUE(bob.post("two").ok());
  w.net.run();
  ASSERT_TRUE(alice.post("three").ok());
  w.net.run();

  // Everyone (author included, via local echo) sees the same history.
  for (auto* chat : {&alice, &bob, &carol}) {
    ASSERT_EQ(chat->history().size(), 3u);
    EXPECT_EQ(chat->history()[0].content, "one");
    EXPECT_EQ(chat->history()[1].content, "two");
    EXPECT_EQ(chat->history()[2].content, "three");
    EXPECT_EQ(chat->history()[0].author, "alice");
    EXPECT_EQ(chat->history()[1].author, "bob");
  }
}

TEST(GroupChat, PresencePropagatesAndFollowsRoster) {
  ChatWorld w(2);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");

  ASSERT_TRUE(alice.set_presence("reviewing the paper").ok());
  w.net.run();
  ASSERT_EQ(bob.presence().count("alice"), 1u);
  EXPECT_EQ(bob.presence().at("alice"), "reviewing the paper");

  // Alice leaves; her presence entry disappears from bob's map when the
  // authenticated roster update arrives.
  ASSERT_TRUE(w.members["alice"]->leave().ok());
  w.net.run();
  EXPECT_EQ(bob.presence().count("alice"), 0u);
  EXPECT_EQ(bob.roster(), std::vector<std::string>{"bob"});
}

TEST(GroupChat, RosterTracksMembershipNotClaims) {
  ChatWorld w(3);
  auto& alice = w.add("alice");
  w.add("bob");
  EXPECT_EQ(alice.roster(), (std::vector<std::string>{"alice", "bob"}));
}

TEST(GroupChat, HistoryIsBounded) {
  ChatWorld w(4);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  (void)bob;
  // Default capacity 256; overflow it.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(alice.post("line " + std::to_string(i)).ok());
    w.net.run();
  }
  EXPECT_EQ(alice.history().size(), 256u);
  EXPECT_EQ(alice.history().front().content, "line 44");
  EXPECT_EQ(alice.history().back().content, "line 299");
}

TEST(GroupChat, PostWhileDisconnectedFails) {
  net::SimNetwork net;
  DeterministicRng rng(5);
  auto pa = crypto::LongTermKey::random(rng);
  core::Member loner("loner", "L", pa, rng);
  GroupChat chat(loner);
  auto s = chat.post("anyone?");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::unexpected);
}

TEST(GroupChat, HostilePayloadsCountedNotCrashing) {
  ChatWorld w(6);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  (void)alice;

  // A member (insider) ships raw non-chat bytes through the data plane.
  ASSERT_TRUE(w.members["alice"]->send_data(to_bytes("RAW GARBAGE")).ok());
  w.net.run();
  EXPECT_EQ(bob.decode_failures(), 1u);
  EXPECT_TRUE(bob.history().empty());

  // An insider forging the AUTHOR field inside the payload: the data-plane
  // origin check flags the mismatch.
  ChatMessage forged{ChatKind::text, "bob", "I never said this", 0};
  ASSERT_TRUE(w.members["alice"]->send_data(encode(forged)).ok());
  w.net.run();
  EXPECT_EQ(bob.decode_failures(), 2u);
  EXPECT_TRUE(bob.history().empty());
}

TEST(GroupChat, OnMessageHookFires) {
  ChatWorld w(7);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  std::vector<std::string> seen;
  bob.on_message = [&seen](const ChatMessage& m) {
    seen.push_back(m.author + ":" + m.content);
  };
  ASSERT_TRUE(alice.post("ping").ok());
  ASSERT_TRUE(alice.set_presence("busy").ok());
  w.net.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "alice:ping");
  EXPECT_EQ(seen[1], "alice:busy");
}

TEST(GroupChat, PassthroughForwardsCoreEvents) {
  ChatWorld w(8);
  auto& alice = w.add("alice");
  int views = 0;
  alice.set_event_passthrough([&views](const core::GroupEvent& ev) {
    if (std::holds_alternative<core::ViewChanged>(ev)) ++views;
  });
  w.add("bob");
  EXPECT_GT(views, 0);
}

TEST(GroupChat, SurvivesRekeyMidConversation) {
  ChatWorld w(9);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.post("before").ok());
  w.net.run();
  w.leader.rekey();
  w.net.run();
  ASSERT_TRUE(alice.post("after").ok());
  w.net.run();
  ASSERT_EQ(bob.history().size(), 2u);
  EXPECT_EQ(bob.history()[1].content, "after");
}

}  // namespace
}  // namespace enclaves::app
