// Application layers over the real TCP transport: GroupChat and SharedState
// running end-to-end on sockets — the full stack a deployment would run.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app/group_chat.h"
#include "app/shared_state.h"
#include "core/leader.h"
#include "net/tcp.h"
#include "util/rng.h"

namespace enclaves::app {
namespace {

struct TcpAppWorld {
  TcpAppWorld()
      : rng(61),
        leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()}, rng) {
    auto port = leader_node.listen(0);
    EXPECT_TRUE(port.ok());
    leader_port = *port;
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      auto it = conn_of.find(to);
      if (it != conn_of.end()) (void)leader_node.send(it->second, e);
    });
    leader_node.set_callbacks({nullptr,
                               [this](net::ConnId c, const wire::Envelope& e) {
                                 conn_of[e.sender] = c;
                                 leader.handle(e);
                               },
                               nullptr});
  }

  core::Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto node = std::make_unique<net::TcpNode>();
    auto conn = node->connect(leader_port);
    EXPECT_TRUE(conn.ok());
    auto member = std::make_unique<core::Member>(id, "L", pa, rng);
    auto* node_raw = node.get();
    auto* member_raw = member.get();
    net::ConnId conn_id = *conn;
    member->set_send([node_raw, conn_id](const std::string&,
                                         wire::Envelope e) {
      (void)node_raw->send(conn_id, e);
    });
    node->set_callbacks({nullptr,
                         [member_raw](net::ConnId, const wire::Envelope& e) {
                           member_raw->handle(e);
                         },
                         nullptr});
    nodes[id] = std::move(node);
    members[id] = std::move(member);
    return *member_raw;
  }

  void pump(const std::function<bool()>& done, int spins = 5000) {
    for (int i = 0; i < spins && !done(); ++i) {
      leader_node.poll_once(1);
      for (auto& [id, n] : nodes) n->poll_once(0);
    }
  }

  DeterministicRng rng;
  net::TcpNode leader_node;
  std::uint16_t leader_port = 0;
  core::Leader leader;
  std::map<std::string, net::ConnId> conn_of;
  std::map<std::string, std::unique_ptr<net::TcpNode>> nodes;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

TEST(AppOverTcp, ChatAndStateOverRealSockets) {
  TcpAppWorld w;
  auto& alice_m = w.add("alice");
  auto& bob_m = w.add("bob");

  GroupChat alice_chat(alice_m);
  SharedState bob_state(bob_m);  // different apps on different members is
                                 // fine: undecodable payloads are counted,
                                 // not fatal

  ASSERT_TRUE(alice_m.join().ok());
  w.pump([&] { return alice_m.connected() && alice_m.has_group_key(); });
  ASSERT_TRUE(bob_m.join().ok());
  w.pump([&] {
    return bob_m.connected() && bob_m.has_group_key() &&
           alice_m.epoch() == bob_m.epoch();
  });
  ASSERT_TRUE(alice_m.connected() && bob_m.connected());

  // Alice chats; bob's SharedState can't decode chat payloads — counted.
  ASSERT_TRUE(alice_chat.post("hello bob").ok());
  w.pump([&] { return bob_state.decode_failures() > 0; });
  EXPECT_GE(bob_state.decode_failures(), 1u);

  // Same app on both sides: replace bob's app with a chat.
  GroupChat bob_chat(bob_m);
  ASSERT_TRUE(alice_chat.post("now we talk").ok());
  w.pump([&] { return !bob_chat.history().empty(); });
  ASSERT_EQ(bob_chat.history().size(), 1u);
  EXPECT_EQ(bob_chat.history()[0].content, "now we talk");
  EXPECT_EQ(bob_chat.roster(), (std::vector<std::string>{"alice", "bob"}));
}

TEST(AppOverTcp, SharedStateConvergesOverSockets) {
  TcpAppWorld w;
  auto& alice_m = w.add("alice");
  auto& bob_m = w.add("bob");
  SharedState alice_state(alice_m);
  SharedState bob_state(bob_m);

  ASSERT_TRUE(alice_m.join().ok());
  w.pump([&] { return alice_m.connected() && alice_m.has_group_key(); });
  ASSERT_TRUE(bob_m.join().ok());
  w.pump([&] {
    return bob_m.connected() && alice_m.epoch() == bob_m.epoch();
  });

  ASSERT_TRUE(alice_state.set("doc", "draft 1").ok());
  w.pump([&] { return bob_state.contains("doc"); });
  ASSERT_TRUE(bob_state.set("doc", "draft 2").ok());
  w.pump([&] { return alice_state.get("doc") == "draft 2"; });
  EXPECT_EQ(alice_state.get("doc"), bob_state.get("doc"));
}

}  // namespace
}  // namespace enclaves::app
