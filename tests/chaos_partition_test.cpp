// ChaosPartitionHeal: seeded partition/heal schedules against the
// reconciliation layer (PROTOCOL.md §12). Every run cuts one or more
// members away under a random loss/duplicate/delay plan, waits for leader
// suspicion + parole-expulsion and member disconnection, queues offline ops
// into the signed OpLog, heals, and asserts the merge: every queued op is
// delivered to every survivor exactly once and in order, the member
// fast-rejoins without a rekey storm, and the verdict/evidence stream
// reconciles with the injector's own statistics. A failing seed replays
// deterministically from (plan, seed).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

struct PartitionChaosWorld {
  static constexpr int kMembers = 4;

  PartitionChaosWorld(std::uint64_t seed, net::FaultPlan plan)
      : rng(seed), injector(std::move(plan), seed ^ 0x9EA1) {
    net.set_tap(injector.tap());
    LeaderConfig config;
    config.id = "L";
    config.rekey = RekeyPolicy::strict();
    config.retry = RetryPolicy::exponential(1, 8, /*jitter=*/2);
    config.auto_expel_attempts = 8;
    config.parole_epochs = 6;
    leader = std::make_unique<Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });

    for (int i = 0; i < kMembers; ++i) {
      const std::string id = member_id(i);
      auto pa = crypto::LongTermKey::random(rng);
      EXPECT_TRUE(leader->register_member(id, pa).ok());
      auto m = std::make_unique<Member>(id, "L", pa, rng);
      m->set_send([this](const std::string& to, wire::Envelope e) {
        net.send(to, std::move(e));
      });
      m->set_retry_policy(RetryPolicy::exponential(1, 8, /*jitter=*/2));
      m->set_suspect_after(20);
      m->enable_auto_rejoin(RetryPolicy::exponential(2, 16, 3));
      m->enable_reconciliation(RetryPolicy::exponential(1, 8, /*jitter=*/2));
      auto* seqs = &delivered[id];
      m->set_event_handler([seqs](const GroupEvent& ev) {
        if (const auto* d = std::get_if<DataReceived>(&ev)) {
          const std::string s = enclaves::to_string(d->payload);
          auto at = s.find('#');
          if (at != std::string::npos)
            (*seqs)[d->origin].push_back(std::stoull(s.substr(at + 1)));
        }
      });
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  static std::string member_id(int i) { return "m" + std::to_string(i); }

  // One time step: heartbeat every 8 steps, drain, fire all timers, drain.
  void step() {
    if (step_count % 8 == 0) leader->probe_liveness();
    net.run(1u << 16);
    leader->tick();
    for (auto& [id, m] : members) m->tick();
    net.run(1u << 16);
    ++step_count;
  }

  bool converged() const {
    if (leader->member_count() != static_cast<std::size_t>(kMembers))
      return false;
    const auto expect = leader->members();
    for (const auto& [id, m] : members) {
      if (!m->connected() || m->disconnected()) return false;
      if (m->epoch() != leader->epoch() || m->view() != expect) return false;
    }
    return true;
  }

  bool settle(int max_steps = 4000) {
    for (int t = 0; t < max_steps; ++t) {
      if (converged() && net.queue_size() == 0 && net.held_size() == 0)
        return true;
      step();
    }
    return converged();
  }

  // End-state snapshot for failure messages.
  std::string debug_state() const {
    std::string out = "leader epoch=" + std::to_string(leader->epoch()) +
                      " members=" + std::to_string(leader->member_count()) +
                      " parole=" + std::to_string(leader->parole_count());
    for (const auto& [id, m] : members) {
      out += "\n  " + id + (m->connected() ? " connected" : " down") +
             (m->disconnected() ? " disconnected-mode" : "") +
             " epoch=" + std::to_string(m->epoch()) +
             " oplog=" + std::to_string(m->oplog_depth());
    }
    for (const char* name :
         {"reconcile_offers_total", "reconcile_admits_total",
          "reconcile_ops_replayed_total", "reconcile_quarantines_total",
          "reconcile_intrusions_total", "reconcile_abandons_total",
          "reconcile_fast_rejoins_total", "auth_rejects_total"})
      out += "\n  " + std::string(name) + "=" +
             std::to_string(metrics.counter_total(name));
    return out;
  }

  // Next payload number for `origin`, embedded as "origin#N" so trackers
  // can assert per-origin exactly-once in-order delivery end to end.
  Status publish(const std::string& origin) {
    auto& m = *members[origin];
    return m.send_data(
        to_bytes(origin + "#" + std::to_string(next_num[origin]++)));
  }

  // Sinks declared before the network so they attach first, detach last.
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink{metrics};
  obs::ScopedTraceSink trace_sink{trace};
  obs::ScopedSecurityLedger ledger_sink{ledger};

  net::SimNetwork net;
  DeterministicRng rng;
  net::FaultInjector injector;
  std::unique_ptr<Leader> leader;
  std::map<std::string, std::unique_ptr<Member>> members;
  // delivered[receiver][origin] = payload numbers in arrival order
  std::map<std::string, std::map<std::string, std::vector<std::uint64_t>>>
      delivered;
  std::map<std::string, std::uint64_t> next_num;
  std::uint64_t step_count = 0;
};

net::FaultPlan plan_for_seed(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.faults.drop_pct = static_cast<std::uint32_t>((seed * 7) % 21);  // <=20%
  plan.faults.duplicate_pct = static_cast<std::uint32_t>((seed * 3) % 11);
  plan.faults.delay_pct = static_cast<std::uint32_t>((seed * 5) % 16);
  plan.faults.max_delay_steps = 1 + static_cast<std::uint32_t>(seed % 5);
  return plan;
}

constexpr int kWarmupRounds = 2;

// The payload numbers `receiver` saw from `origin` (empty if none).
std::vector<std::uint64_t> seen(const PartitionChaosWorld& w,
                                const std::string& receiver,
                                const std::string& origin) {
  auto it = w.delivered.find(receiver);
  if (it == w.delivered.end()) return {};
  auto ot = it->second.find(origin);
  return ot == it->second.end() ? std::vector<std::uint64_t>{} : ot->second;
}

// At-most-once, in-order: the numbers strictly increase. The data plane is
// fire-and-forget, so under a lossy plan gaps are legitimate — duplicates
// and reordering never are, replayed ops included.
void assert_no_dup_in_order(const PartitionChaosWorld& w,
                            const std::string& receiver,
                            const std::string& origin) {
  const auto seqs = seen(w, receiver, origin);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    ASSERT_LT(seqs[i - 1], seqs[i])
        << receiver << " got " << origin
        << " payloads duplicated or out of order at index " << i;
  }
}

// A plan that neither drops nor delays loses nothing (duplicates are
// absorbed by the per-origin sequence floor), so full delivery counts hold.
bool plan_is_lossless(const net::FaultPlan& plan) {
  return plan.faults.drop_pct == 0 && plan.faults.delay_pct == 0;
}

// Drives one member through the full partition/heal lifecycle and returns
// once the leader has expelled it onto parole and the member itself has
// entered disconnected mode.
void run_until_cut(PartitionChaosWorld& w, const std::set<std::string>& island,
                   int budget = 600) {
  w.injector.partition(std::set<net::AgentId>(island.begin(), island.end()));
  auto cut = [&] {
    for (const auto& id : island) {
      if (w.leader->is_member(id) || !w.leader->on_parole(id)) return false;
      if (!w.members.at(id)->disconnected()) return false;
    }
    return true;
  };
  for (int t = 0; t < budget && !cut(); ++t) w.step();
  ASSERT_TRUE(cut()) << "partitioned members were never expelled onto parole";
}

class ChaosPartitionHeal : public ::testing::TestWithParam<std::uint64_t> {};

// The flagship sweep: one member cut away, queues ops offline, heals, and
// the merge holds every delivery/rekey/evidence invariant.
TEST_P(ChaosPartitionHeal, SingleMemberHealReplaysExactlyOnce) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const net::FaultPlan plan = plan_for_seed(seed);
  PartitionChaosWorld w(seed, plan);

  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle()) << "join phase did not converge, seed=" << seed;

  // Connected warm-up traffic from everyone.
  for (int i = 0; i < kWarmupRounds; ++i) {
    for (int j = 0; j < PartitionChaosWorld::kMembers; ++j)
      ASSERT_TRUE(w.publish(PartitionChaosWorld::member_id(j)).ok());
    w.step();
  }
  ASSERT_TRUE(w.settle()) << "warm-up did not converge, seed=" << seed;

  // Cut m2 away; wait for suspicion + parole expulsion, then queue offline.
  const std::string victim = "m2";
  run_until_cut(w, {victim});
  const std::uint64_t queued = 3 + seed % 4;  // 3..6 offline ops
  for (std::uint64_t i = 0; i < queued; ++i)
    ASSERT_TRUE(w.publish(victim).ok());
  EXPECT_EQ(w.members[victim]->oplog_depth(), queued);
  // The partition keeps faulting the mainland while the island is dark.
  for (int t = 0; t < 20; ++t) w.step();
  const auto rekeys_before_heal = w.leader->audit().count(AuditKind::rekey);

  w.injector.heal();
  ASSERT_TRUE(w.settle()) << "post-heal convergence failed, seed=" << seed << "\n" << w.debug_state();

  // The heal went through reconciliation, not a fresh handshake storm:
  // admitted offer, fully drained log, fast rejoin with zero extra rekeys.
  EXPECT_GE(w.metrics.counter("L", "L", "reconcile_admits_total"), 1u);
  EXPECT_GE(w.metrics.counter("L", "L", "reconcile_fast_rejoins_total"), 1u);
  EXPECT_EQ(w.leader->audit().count(AuditKind::rekey), rekeys_before_heal)
      << "heal must not rekey (that is what fast rejoin means)";
  EXPECT_EQ(w.members[victim]->oplog_depth(), 0u);
  EXPECT_EQ(w.leader->parole_count(), 0u);

  // Honest runs produce no reconcile-plane accusations, ever.
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_intrusions_total"), 0u);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_quarantines_total"), 0u);
  for (const auto& e : w.ledger.entries())
    EXPECT_NE(e.kind, obs::EvidenceKind::forged_oplog)
        << "honest replay accused of forgery, seed=" << seed;

  // The leader accepted the whole queue exactly once: replay is stop-and-
  // wait under the retained Kr, so its count is exact even under loss.
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_ops_replayed_total"),
            queued);

  // Post-heal round proves the sequence space survived the replay.
  for (int j = 0; j < PartitionChaosWorld::kMembers; ++j)
    ASSERT_TRUE(w.publish(PartitionChaosWorld::member_id(j)).ok());
  ASSERT_TRUE(w.settle()) << "post-heal publish failed, seed=" << seed;

  // No survivor ever saw a victim payload twice or out of order — warm-up,
  // the replayed queue, and the post-heal round fold into one monotone
  // stream. On a lossless plan the fold is also complete.
  for (int j = 0; j < PartitionChaosWorld::kMembers; ++j) {
    const std::string receiver = PartitionChaosWorld::member_id(j);
    if (receiver == victim) continue;
    assert_no_dup_in_order(w, receiver, victim);
    if (plan_is_lossless(plan)) {
      EXPECT_EQ(seen(w, receiver, victim).size(), w.next_num[victim])
          << receiver << " lost victim payloads on a lossless plan";
    }
  }

  // The injector's own account of the run matches the story told above.
  EXPECT_EQ(w.injector.stats().partitions_cut, 1u);
  EXPECT_EQ(w.injector.stats().partitions_healed, 1u);
  EXPECT_GT(w.injector.stats().partition_dropped, 0u)
      << "a partition that dropped nothing cannot have caused the expulsion";

  // And the span graph contains one completed reconcile span for the victim.
  auto spans = obs::SpanTracker::build(w.trace.events());
  std::uint64_t complete_reconciles = 0;
  for (const auto& s : spans)
    if (s.kind == obs::SpanKind::reconcile && s.agent == victim && s.complete)
      ++complete_reconciles;
  EXPECT_GE(complete_reconciles, 1u)
      << "no completed reconcile span for the healed member, seed=" << seed;
}

// Split-brain: two members islanded together. Both queue offline ops, both
// reconcile on heal, and both op streams merge exactly once everywhere on
// the mainland.
TEST_P(ChaosPartitionHeal, SplitBrainBothHalvesQueueAndMerge) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const net::FaultPlan plan = plan_for_seed(seed);
  PartitionChaosWorld w(seed, plan);

  for (auto& [id, m] : w.members) ASSERT_TRUE(m->join().ok());
  ASSERT_TRUE(w.settle()) << "join phase did not converge, seed=" << seed;

  const std::set<std::string> island = {"m2", "m3"};
  run_until_cut(w, island);

  // Both islanders queue; the mainland keeps publishing too.
  const std::uint64_t queued = 2 + seed % 3;  // 2..4 ops per islander
  for (std::uint64_t i = 0; i < queued; ++i) {
    for (const auto& id : island) ASSERT_TRUE(w.publish(id).ok());
    ASSERT_TRUE(w.publish("m0").ok());
    w.step();
  }
  for (const auto& id : island)
    EXPECT_EQ(w.members[id]->oplog_depth(), queued);

  w.injector.heal();
  ASSERT_TRUE(w.settle()) << "post-heal convergence failed, seed=" << seed << "\n" << w.debug_state();

  EXPECT_GE(w.metrics.counter("L", "L", "reconcile_fast_rejoins_total"), 2u);
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_intrusions_total"), 0u);
  EXPECT_EQ(w.leader->parole_count(), 0u);
  for (const auto& id : island)
    EXPECT_EQ(w.members[id]->oplog_depth(), 0u) << id;

  // The leader merged both queues in full, each op exactly once.
  EXPECT_EQ(w.metrics.counter("L", "L", "reconcile_ops_replayed_total"),
            2 * queued);

  // No mainland member ever saw an islander payload twice or out of order;
  // on a lossless plan every payload also arrived. (The islanders' own
  // receipt of each other's replay depends on rejoin order, so only
  // mainland receivers are asserted.)
  for (const std::string receiver : {"m0", "m1"}) {
    for (const auto& origin : island) {
      assert_no_dup_in_order(w, receiver, origin);
      if (plan_is_lossless(plan)) {
        EXPECT_EQ(seen(w, receiver, origin).size(), w.next_num[origin])
            << receiver << " lost " << origin
            << " payloads on a lossless plan";
      }
    }
  }

  EXPECT_EQ(w.injector.stats().partitions_cut, 1u);
  EXPECT_EQ(w.injector.stats().partitions_healed, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPartitionHeal,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace enclaves::core
