// FileDrop: codec, chunking/reassembly, integrity verification, interleaved
// transfers, hostile input, memory caps.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app/file_drop.h"
#include "core/leader.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::app {
namespace {

TEST(FileCodec, OfferRoundTrip) {
  FileOffer o{42, "paper.pdf", 123456, 4,
              crypto::Sha256::hash(to_bytes("x"))};
  auto back = decode_file_message(encode(o));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<FileOffer>(*back), o);
}

TEST(FileCodec, ChunkRoundTrip) {
  FileChunk c{42, 3, to_bytes("chunk data")};
  auto back = decode_file_message(encode(c));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<FileChunk>(*back), c);
}

TEST(FileCodec, GarbageRejected) {
  EXPECT_FALSE(decode_file_message(to_bytes("?")).ok());
  EXPECT_FALSE(decode_file_message({}).ok());
}

struct DropWorld {
  explicit DropWorld(std::uint64_t seed, std::size_t chunk_size = 1024)
      : rng(seed),
        leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()}, rng),
        chunk_size_(chunk_size) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  FileDrop& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<core::Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    FileDrop::Options options;
    options.chunk_size = chunk_size_;
    auto drop = std::make_unique<FileDrop>(*raw, options);
    auto* drop_raw = drop.get();
    members[id] = std::move(m);
    drops[id] = std::move(drop);
    EXPECT_TRUE(raw->join().ok());
    net.run();
    return *drop_raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  core::Leader leader;
  std::size_t chunk_size_;
  std::map<std::string, std::unique_ptr<core::Member>> members;
  std::map<std::string, std::unique_ptr<FileDrop>> drops;
};

TEST(FileDropApp, SmallFileArrivesVerified) {
  DropWorld w(1);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  std::vector<FileDrop::Received> got;
  bob.on_file = [&got](const FileDrop::Received& r) { got.push_back(r); };

  Bytes content = to_bytes("hello, this is a small file");
  ASSERT_TRUE(alice.send_file("note.txt", content).ok());
  w.net.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].origin, "alice");
  EXPECT_EQ(got[0].name, "note.txt");
  EXPECT_EQ(got[0].content, content);
  EXPECT_EQ(bob.inflight(), 0u);
}

TEST(FileDropApp, MultiChunkFileReassembles) {
  DropWorld w(2, /*chunk_size=*/100);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  Bytes content = w.rng.bytes(1050);  // 11 chunks, last one partial
  std::vector<FileDrop::Received> got;
  bob.on_file = [&got](const FileDrop::Received& r) { got.push_back(r); };
  ASSERT_TRUE(alice.send_file("blob.bin", content).ok());
  w.net.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].content, content);
}

TEST(FileDropApp, EmptyFileWorks) {
  DropWorld w(3);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  std::vector<FileDrop::Received> got;
  bob.on_file = [&got](const FileDrop::Received& r) { got.push_back(r); };
  ASSERT_TRUE(alice.send_file("empty", {}).ok());
  w.net.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].content.empty());
}

TEST(FileDropApp, InterleavedTransfersBothComplete) {
  DropWorld w(4, /*chunk_size=*/64);
  auto& alice = w.add("alice");
  auto& carol = w.add("carol");
  auto& bob = w.add("bob");
  std::map<std::string, Bytes> got;
  bob.on_file = [&got](const FileDrop::Received& r) {
    got[r.origin + "/" + r.name] = r.content;
  };

  Bytes f1 = w.rng.bytes(300), f2 = w.rng.bytes(500);
  // Queue both transfers before any delivery: chunks interleave on the wire.
  ASSERT_TRUE(alice.send_file("a.bin", f1).ok());
  ASSERT_TRUE(carol.send_file("c.bin", f2).ok());
  w.net.run();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got["alice/a.bin"], f1);
  EXPECT_EQ(got["carol/c.bin"], f2);
}

TEST(FileDropApp, CorruptedChunkDiscardsTransfer) {
  DropWorld w(5, /*chunk_size=*/64);
  auto& bob = w.add("bob");
  auto& mallory_member = *w.members["bob"];  // unused; keep bob honest
  (void)mallory_member;
  w.add("alice");

  std::vector<FileDrop::Received> got;
  bob.on_file = [&got](const FileDrop::Received& r) { got.push_back(r); };

  // A transfer whose chunks do not match the announced digest: forge the
  // offer/chunks directly through alice's member (an insider shipping
  // inconsistent data).
  Bytes real = w.rng.bytes(128);
  FileOffer offer{99, "evil.bin", real.size(), 2, crypto::Sha256::hash(real)};
  ASSERT_TRUE(w.members["alice"]->send_data(encode(offer)).ok());
  FileChunk c0{99, 0, Bytes(real.begin(), real.begin() + 64)};
  FileChunk c1{99, 1, w.rng.bytes(64)};  // WRONG content
  ASSERT_TRUE(w.members["alice"]->send_data(encode(c0)).ok());
  ASSERT_TRUE(w.members["alice"]->send_data(encode(c1)).ok());
  w.net.run();

  EXPECT_TRUE(got.empty()) << "digest mismatch must suppress delivery";
  EXPECT_GE(bob.discarded_transfers(), 1u);
  EXPECT_EQ(bob.inflight(), 0u);
}

TEST(FileDropApp, OutOfRangeChunkIndexDiscards) {
  DropWorld w(6);
  auto& bob = w.add("bob");
  w.add("alice");
  FileOffer offer{7, "x", 10, 1, crypto::Sha256::hash(Bytes(10, 1))};
  ASSERT_TRUE(w.members["alice"]->send_data(encode(offer)).ok());
  FileChunk bad{7, 5, Bytes(10, 1)};  // index 5 of 1
  ASSERT_TRUE(w.members["alice"]->send_data(encode(bad)).ok());
  w.net.run();
  EXPECT_GE(bob.discarded_transfers(), 1u);
  EXPECT_EQ(bob.inflight(), 0u);
}

TEST(FileDropApp, OverflowingAnnouncedSizeDiscards) {
  DropWorld w(7, /*chunk_size=*/64);
  auto& bob = w.add("bob");
  w.add("alice");
  // Offer claims 10 bytes but ships 64+64: buffered > total_size.
  FileOffer offer{8, "liar", 10, 2, crypto::Sha256::hash(Bytes(10, 0))};
  ASSERT_TRUE(w.members["alice"]->send_data(encode(offer)).ok());
  ASSERT_TRUE(w.members["alice"]->send_data(
      encode(FileChunk{8, 0, Bytes(64, 0)})).ok());
  ASSERT_TRUE(w.members["alice"]->send_data(
      encode(FileChunk{8, 1, Bytes(64, 0)})).ok());
  w.net.run();
  EXPECT_GE(bob.discarded_transfers(), 1u);
  EXPECT_EQ(bob.inflight(), 0u);
}

TEST(FileDropApp, ChunkWithoutOfferIgnored) {
  DropWorld w(8);
  auto& bob = w.add("bob");
  w.add("alice");
  ASSERT_TRUE(w.members["alice"]->send_data(
      encode(FileChunk{1234, 0, Bytes(16, 2)})).ok());
  w.net.run();
  EXPECT_EQ(bob.inflight(), 0u);
}

}  // namespace
}  // namespace enclaves::app
