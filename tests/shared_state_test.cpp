// SharedState: codec, LWW convergence, tombstones, snapshots for late
// joiners, hostile-payload tolerance.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app/shared_state.h"
#include "core/leader.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::app {
namespace {

TEST(StateCodec, UpdateRoundTrip) {
  StateUpdate u{"color", Entry{"blue", Version{7, "alice"}, false}};
  auto back = decode_state_message(encode(u));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<StateUpdate>(*back), u);
}

TEST(StateCodec, TombstoneRoundTrip) {
  StateUpdate u{"gone", Entry{{}, Version{3, "bob"}, true}};
  auto back = decode_state_message(encode(u));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::get<StateUpdate>(*back).entry.tombstone);
}

TEST(StateCodec, SnapshotRoundTrip) {
  SnapshotReply reply{{
      {"a", Entry{"1", Version{1, "x"}, false}},
      {"b", Entry{"", Version{2, "y"}, true}},
  }};
  auto back = decode_state_message(encode(reply));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<SnapshotReply>(*back), reply);
  auto req = decode_state_message(encode(SnapshotRequest{}));
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(std::holds_alternative<SnapshotRequest>(*req));
}

TEST(StateCodec, GarbageRejected) {
  EXPECT_FALSE(decode_state_message(to_bytes("nope")).ok());
  EXPECT_FALSE(decode_state_message({}).ok());
}

TEST(VersionOrder, LamportWithAuthorTieBreak) {
  EXPECT_TRUE((Version{1, "z"} < Version{2, "a"}));
  EXPECT_TRUE((Version{2, "a"} < Version{2, "b"}));
  EXPECT_FALSE((Version{2, "b"} < Version{2, "b"}));
}

struct StateWorld {
  explicit StateWorld(std::uint64_t seed)
      : rng(seed),
        leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  SharedState& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<core::Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    auto state = std::make_unique<SharedState>(*raw);
    auto* state_raw = state.get();
    members[id] = std::move(m);
    states[id] = std::move(state);
    EXPECT_TRUE(raw->join().ok());
    net.run();
    return *state_raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  core::Leader leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
  std::map<std::string, std::unique_ptr<SharedState>> states;
};

TEST(SharedState, WritesReplicateToEveryone) {
  StateWorld w(1);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  auto& carol = w.add("carol");
  ASSERT_TRUE(alice.set("topic", "design review").ok());
  w.net.run();
  for (auto* s : {&alice, &bob, &carol}) {
    EXPECT_EQ(s->get("topic"), "design review");
    EXPECT_EQ(s->keys(), std::vector<std::string>{"topic"});
  }
}

TEST(SharedState, LastWriterWinsConverges) {
  StateWorld w(2);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.set("k", "from-alice").ok());
  w.net.run();
  ASSERT_TRUE(bob.set("k", "from-bob").ok());
  w.net.run();
  EXPECT_EQ(alice.get("k"), "from-bob");
  EXPECT_EQ(bob.get("k"), "from-bob");
}

TEST(SharedState, ConcurrentWritesConvergeDeterministically) {
  StateWorld w(3);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  // Both write before either delivery: same clock, author tie-break.
  ASSERT_TRUE(alice.set("k", "A").ok());
  ASSERT_TRUE(bob.set("k", "B").ok());
  w.net.run();
  ASSERT_EQ(alice.get("k"), bob.get("k")) << "must converge";
  EXPECT_EQ(*alice.get("k"), "B") << "higher author id wins the tie";
}

TEST(SharedState, EraseTombstonesEverywhere) {
  StateWorld w(4);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.set("tmp", "x").ok());
  w.net.run();
  ASSERT_TRUE(bob.erase("tmp").ok());
  w.net.run();
  EXPECT_FALSE(alice.contains("tmp"));
  EXPECT_FALSE(bob.contains("tmp"));
  EXPECT_EQ(alice.size(), 0u);
  // A STALE re-write with an older clock must not resurrect the key on
  // arrival order alone: alice writes with a fresh clock, so it returns.
  ASSERT_TRUE(alice.set("tmp", "back").ok());
  w.net.run();
  EXPECT_EQ(bob.get("tmp"), "back");
}

TEST(SharedState, LateJoinerCatchesUpViaSnapshot) {
  StateWorld w(5);
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.set("a", "1").ok());
  ASSERT_TRUE(alice.set("b", "2").ok());
  ASSERT_TRUE(alice.erase("a").ok());
  w.net.run();

  auto& dave = w.add("dave");  // joins after the writes
  EXPECT_TRUE(dave.keys().empty()) << "missed the history";
  ASSERT_TRUE(dave.request_snapshot().ok());
  w.net.run();
  EXPECT_EQ(dave.get("b"), "2");
  EXPECT_FALSE(dave.contains("a")) << "tombstones propagate in snapshots";
}

TEST(SharedState, OnChangeFiresForRemoteUpdatesOnly) {
  StateWorld w(6);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  std::vector<std::string> changed;
  bob.on_change = [&changed](const std::string& key) {
    changed.push_back(key);
  };
  ASSERT_TRUE(alice.set("x", "1").ok());
  w.net.run();
  ASSERT_TRUE(bob.set("y", "2").ok());  // own write: no on_change
  w.net.run();
  EXPECT_EQ(changed, std::vector<std::string>{"x"});
}

TEST(SharedState, DuplicateDeliveryIsIdempotent) {
  StateWorld w(7);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  int changes = 0;
  bob.on_change = [&changes](const std::string&) { ++changes; };
  ASSERT_TRUE(alice.set("k", "v").ok());
  w.net.run();
  // Simulate an app-level duplicate: apply the same snapshot twice.
  ASSERT_TRUE(alice.request_snapshot().ok());
  w.net.run();
  ASSERT_TRUE(alice.request_snapshot().ok());
  w.net.run();
  EXPECT_EQ(changes, 1) << "LWW absorbs replays/duplicates";
  EXPECT_EQ(bob.get("k"), "v");
}

TEST(SharedState, HostilePayloadsCounted) {
  StateWorld w(8);
  w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(w.members["alice"]->send_data(to_bytes("junk bytes")).ok());
  w.net.run();
  EXPECT_EQ(bob.decode_failures(), 1u);
  EXPECT_TRUE(bob.keys().empty());
}

TEST(SharedState, ManyKeysManyWritersConverge) {
  StateWorld w(9);
  std::vector<SharedState*> all;
  for (const char* id : {"m0", "m1", "m2", "m3"}) all.push_back(&w.add(id));
  DeterministicRng script(99);
  for (int step = 0; step < 120; ++step) {
    auto* s = all[script.below(all.size())];
    std::string key = "k" + std::to_string(script.below(8));
    if (script.below(5) == 0) {
      (void)s->erase(key);
    } else {
      (void)s->set(key, "v" + std::to_string(step));
    }
    if (script.below(3) == 0) w.net.run();
  }
  w.net.run();
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_EQ(all[i]->keys(), all[0]->keys()) << "key sets diverged";
    for (const auto& k : all[0]->keys())
      EXPECT_EQ(all[i]->get(k), all[0]->get(k)) << k;
  }
}

}  // namespace
}  // namespace enclaves::app
