// RetryPolicy / RetryState / VirtualClock: the unified liveness layer's
// backoff arithmetic must be deterministic, capped, budget-aware, and —
// under the default policy — byte-for-byte equivalent to the historical
// retransmit-every-tick behaviour.
#include <gtest/gtest.h>

#include "core/retry.h"
#include "util/clock.h"

namespace enclaves::core {
namespace {

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance();
  EXPECT_EQ(c.now(), 1u);
  c.advance(41);
  EXPECT_EQ(c.now(), 42u);
}

TEST(RetryPolicy, DefaultFiresEveryTick) {
  auto p = RetryPolicy::every_tick();
  for (std::uint32_t a = 0; a < 10; ++a)
    EXPECT_EQ(p.interval_for(a, 123), 1u) << "attempt " << a;
}

TEST(RetryPolicy, ExponentialDoublesUpToCap) {
  auto p = RetryPolicy::exponential(/*initial=*/1, /*cap=*/8);
  EXPECT_EQ(p.interval_for(0, 0), 1u);
  EXPECT_EQ(p.interval_for(1, 0), 2u);
  EXPECT_EQ(p.interval_for(2, 0), 4u);
  EXPECT_EQ(p.interval_for(3, 0), 8u);
  EXPECT_EQ(p.interval_for(4, 0), 8u) << "capped";
  EXPECT_EQ(p.interval_for(63, 0), 8u) << "no overflow at huge attempts";
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  auto p = RetryPolicy::exponential(4, 64, /*jitter=*/3);
  for (std::uint32_t a = 0; a < 20; ++a) {
    Tick i1 = p.interval_for(a, 77);
    Tick i2 = p.interval_for(a, 77);
    EXPECT_EQ(i1, i2) << "same salt+attempt must give same jitter";
    Tick nojit = RetryPolicy::exponential(4, 64).interval_for(a, 77);
    EXPECT_GE(i1, nojit);
    EXPECT_LE(i1, nojit + 3);
  }
  // Different salts should (somewhere) produce different jitter.
  bool differs = false;
  for (std::uint32_t a = 0; a < 20 && !differs; ++a)
    differs = p.interval_for(a, 1) != p.interval_for(a, 2);
  EXPECT_TRUE(differs);
}

TEST(RetryState, ArmedIsDueImmediately) {
  RetryState s;
  EXPECT_FALSE(s.armed());
  s.arm(10);
  EXPECT_TRUE(s.armed());
  EXPECT_TRUE(s.due(10, RetryPolicy::every_tick()));
}

TEST(RetryState, EveryTickPolicyMatchesHistoricalCadence) {
  // Under the default policy an armed exchange is due on every single tick
  // — exactly what Leader::tick/Member::tick used to do unconditionally.
  RetryState s;
  auto p = RetryPolicy::every_tick();
  VirtualClock clock;
  s.arm(clock.now());
  int sends = 0;
  for (int t = 0; t < 10; ++t) {
    clock.advance();
    if (s.due(clock.now(), p)) {
      s.record_attempt(clock.now(), p);
      ++sends;
    }
  }
  EXPECT_EQ(sends, 10);
  EXPECT_EQ(s.attempts(), 10u);
}

TEST(RetryState, ExponentialBackoffThinsRetransmits) {
  RetryState s;
  auto p = RetryPolicy::exponential(1, 8);
  VirtualClock clock;
  s.arm(clock.now());
  int sends = 0;
  for (int t = 0; t < 32; ++t) {
    clock.advance();
    if (s.due(clock.now(), p)) {
      s.record_attempt(clock.now(), p);
      ++sends;
    }
  }
  // Due at t=1 (+1), 2 (+2), 4 (+4), 8 (+8 cap), 16, 24, 32.
  EXPECT_EQ(sends, 7);
  EXPECT_LT(sends, 32) << "backoff must thin the retransmit stream";
}

TEST(RetryState, BudgetExhaustsAndDisarmResets) {
  RetryState s;
  auto p = RetryPolicy::bounded(3);
  VirtualClock clock;
  s.arm(clock.now());
  int sends = 0;
  for (int t = 0; t < 10; ++t) {
    clock.advance();
    if (s.due(clock.now(), p)) {
      s.record_attempt(clock.now(), p);
      ++sends;
    }
  }
  EXPECT_EQ(sends, 3);
  EXPECT_TRUE(s.exhausted(p));
  s.disarm();
  EXPECT_FALSE(s.armed());
  s.arm(clock.now());
  EXPECT_FALSE(s.exhausted(p)) << "re-arming restores the budget";
}

TEST(RetrySalt, StableAcrossCalls) {
  EXPECT_EQ(stable_salt("alice"), stable_salt("alice"));
  EXPECT_NE(stable_salt("alice"), stable_salt("bob"));
  // Pin the FNV-1a value so cross-platform reproducibility regressions get
  // caught: chaos schedules depend on it.
  EXPECT_EQ(stable_salt(""), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace enclaves::core
