// Security-ledger attribution: every authentication/freshness refusal in
// the protocol yields exactly one ledger entry naming the observer, the
// evidence kind, and the (untrusted) accused origin — and benign
// retransmissions yield none.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/attacks.h"
#include "core/leader.h"
#include "core/member.h"
#include "crypto/aead.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "obs/security.h"
#include "util/rng.h"
#include "wire/payloads.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

using obs::EvidenceKind;
using obs::SecurityEvidence;

// A two-plane view of the ledger: the clockless crypto plane files its own
// tag-mismatch evidence, so protocol-level assertions filter to the group.
std::vector<SecurityEvidence> core_entries(const obs::SecurityLedger& ledger) {
  std::vector<SecurityEvidence> out;
  for (const auto& e : ledger.entries())
    if (e.group != "crypto") out.push_back(e);
  return out;
}

struct LedgeredWorld {
  explicit LedgeredWorld(std::uint64_t seed)
      : rng(seed),
        leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng),
        metrics_sink(metrics),
        ledger_sink(ledger) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
  obs::MetricsRegistry metrics;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink;
  obs::ScopedSecurityLedger ledger_sink;
  std::map<std::string, std::unique_ptr<Member>> members;
};

TEST(SecurityLedger, ForgedAdminMsgYieldsExactlyOneCoreEntry) {
  LedgeredWorld w(1);
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  w.ledger.clear();

  // Well-formed sealed AdminMsg under a key alice does not hold: the session
  // refuses it as an authentication failure and accuses the claimed sender.
  DeterministicRng forge_rng(99);
  auto wrong_key = crypto::SessionKey::random(forge_rng);
  w.net.inject("alice",
               wire::make_sealed(crypto::default_aead(), wrong_key.view(),
                                 forge_rng, wire::Label::AdminMsg, "L",
                                 "alice", to_bytes("forged")));
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::aead_open_failure);
  EXPECT_EQ(core[0].group, "L");
  EXPECT_EQ(core[0].observer, "alice");
  EXPECT_EQ(core[0].accused, "L");
  // The crypto plane independently filed the tag mismatch.
  EXPECT_GE(w.ledger.size(), 2u);
  EXPECT_EQ(w.ledger.suspicion("L"), 1u);
}

TEST(SecurityLedger, UnknownSenderAttributedAtLeader) {
  LedgeredWorld w(2);
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  w.ledger.clear();

  w.net.inject("L", wire::Envelope{wire::Label::AuthInitReq, "mallory", "L",
                                   to_bytes("hello")});
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::unknown_sender);
  EXPECT_EQ(core[0].observer, "L");
  EXPECT_EQ(core[0].accused, "mallory");
  EXPECT_EQ(core[0].detail, "AuthInitReq");
  EXPECT_EQ(w.ledger.suspicion("mallory"), 1u);
}

TEST(SecurityLedger, NonMemberGroupDataRelayRejected) {
  LedgeredWorld w(3);
  auto& alice = w.add("alice");
  w.add("eve");  // registered credential, but eve never joins
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  w.ledger.clear();

  DeterministicRng forge_rng(7);
  wire::GroupDataPayload p{"eve", w.leader.epoch(), 1, to_bytes("smuggled")};
  w.net.inject("L", wire::make_sealed(crypto::default_aead(),
                                      w.leader.group_key().view(), forge_rng,
                                      wire::Label::GroupData, "eve",
                                      wire::kGroupRecipient,
                                      wire::encode(p)));
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::relay_reject);
  EXPECT_EQ(core[0].observer, "L");
  EXPECT_EQ(core[0].accused, "eve");
  EXPECT_EQ(core[0].detail, "not a member");
}

TEST(SecurityLedger, ReplayedSequenceAccusesTheClaimedOrigin) {
  LedgeredWorld w(4);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.connected());
  w.ledger.clear();

  // A valid delivery for (alice, current epoch, seq 5), then its replay.
  DeterministicRng seal_rng(11);
  wire::GroupDataPayload p{"alice", w.leader.epoch(), 5, to_bytes("d5")};
  auto env = wire::make_sealed(crypto::default_aead(),
                               w.leader.group_key().view(), seal_rng,
                               wire::Label::GroupData, "alice",
                               wire::kGroupRecipient, wire::encode(p));
  w.net.inject("bob", env);
  w.net.run();
  EXPECT_TRUE(core_entries(w.ledger).empty()) << "first delivery is genuine";

  w.net.inject("bob", env);
  w.net.run();
  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::replayed_seq);
  EXPECT_EQ(core[0].observer, "bob");
  EXPECT_EQ(core[0].accused, "alice");
  EXPECT_EQ(w.ledger.suspicion("alice"), 1u);
}

TEST(SecurityLedger, WrongEpochNumberIsStaleEpochEvidence) {
  LedgeredWorld w(5);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  w.ledger.clear();

  // Sealed under the CURRENT key but stamped with a past epoch: opens fine,
  // fails the freshness check.
  DeterministicRng seal_rng(13);
  wire::GroupDataPayload p{"alice", w.leader.epoch() - 1, 9, to_bytes("old")};
  w.net.inject("bob", wire::make_sealed(crypto::default_aead(),
                                        w.leader.group_key().view(), seal_rng,
                                        wire::Label::GroupData, "alice",
                                        wire::kGroupRecipient,
                                        wire::encode(p)));
  w.net.run();

  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::stale_epoch);
  EXPECT_EQ(core[0].observer, "bob");
  EXPECT_EQ(core[0].accused, "alice");
}

// The stop-and-wait channel absorbs a byte-identical retransmission of the
// LATEST exchange with a cached re-answer — a benign duplicate is not
// intrusion evidence. Replaying an OLDER admin message, however, fails the
// freshness chain and is ledgered as a stale nonce.
TEST(SecurityLedger, DuplicateOfLatestAbsorbedOlderReplayLedgered) {
  LedgeredWorld w(6);
  std::vector<net::Packet> captured;
  w.net.set_tap([&captured](const net::Packet& p) {
    captured.push_back(p);
    return net::TapVerdict::deliver;
  });
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  w.ledger.clear();

  std::vector<wire::Envelope> admin_to_alice;
  for (const auto& p : captured)
    if (p.to == "alice" && p.envelope.label == wire::Label::AdminMsg)
      admin_to_alice.push_back(p.envelope);
  ASSERT_GE(admin_to_alice.size(), 2u) << "join ships Kg then the view";

  // Detach the leader: the member's cached re-answer Ack would otherwise
  // arrive at a leader with no exchange pending, which is itself ledgered
  // (as replayed traffic) and would muddy the member-side assertion.
  w.net.detach("L");

  const std::uint64_t reanswers_before =
      w.metrics.counter_total("reanswers_total");
  w.net.inject("alice", admin_to_alice.back());
  w.net.run();
  EXPECT_TRUE(core_entries(w.ledger).empty())
      << "benign retransmission must not be evidence";
  EXPECT_GT(w.metrics.counter_total("reanswers_total"), reanswers_before);

  w.net.inject("alice", admin_to_alice.front());
  w.net.run();
  auto core = core_entries(w.ledger);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, EvidenceKind::stale_nonce);
  EXPECT_EQ(core[0].observer, "alice");
  EXPECT_EQ(core[0].accused, "L");
}

// Every ledger entry bumps the security.* metrics through the same sink
// gate: total refusals and per-accused suspicion must agree exactly.
TEST(SecurityLedger, MetricsAgreeWithLedger) {
  LedgeredWorld w(8);
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();

  w.net.inject("L", wire::Envelope{wire::Label::AuthInitReq, "mallory", "L",
                                   to_bytes("x")});
  w.net.inject("L", wire::Envelope{wire::Label::GroupData, "mallory", "L",
                                   to_bytes("y")});
  w.net.run();

  EXPECT_EQ(w.metrics.counter_total("refusals_total"), w.ledger.size());
  std::uint64_t suspicion_metric = 0;
  for (const auto& [key, value] : w.metrics.snapshot().counters)
    if (key.group == "security" && key.name == "suspicion_total")
      suspicion_metric += value;
  std::uint64_t suspicion_ledger = 0;
  for (const auto& [accused, n] : w.ledger.suspicion_counts())
    suspicion_ledger += n;
  EXPECT_EQ(suspicion_metric, suspicion_ledger);
}

TEST(SecurityLedger, JsonlExportNamesEveryField) {
  obs::SecurityLedger ledger;
  ledger.record({7, EvidenceKind::relay_reject, "L", "L", "e\"ve",
                 "not a member", 0});
  const std::string jsonl = ledger.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"relay_reject\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"accused\":\"e\\\"ve\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"observer\":\"L\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"detail\":\"not a member\""), std::string::npos);
}

// The whole Section 2.3 attack catalogue, run with the ledger attached: the
// improved protocol's refusals all land as attributed evidence.
TEST(SecurityLedger, AttackMatrixProducesAttributedEvidence) {
  obs::MetricsRegistry metrics;
  obs::SecurityLedger ledger;
  obs::ScopedMetricsSink metrics_sink(metrics);
  obs::ScopedSecurityLedger ledger_sink(ledger);

  auto reports = adversary::run_all_attacks(7);
  ASSERT_EQ(reports.size(), 12u);
  for (const auto& r : reports) {
    if (r.protocol == "intrusion-tolerant") {
      EXPECT_FALSE(r.attacker_succeeded) << r.attack << ": " << r.detail;
    }
  }

  EXPECT_GT(ledger.size(), 0u) << "blocked attacks must leave evidence";
  EXPECT_EQ(metrics.counter_total("refusals_total"), ledger.size());
  for (const auto& e : ledger.entries()) {
    EXPECT_FALSE(e.group.empty());
    EXPECT_FALSE(e.observer.empty());
    EXPECT_NE(std::string_view(obs::evidence_kind_name(e.kind)), "");
  }
  EXPECT_FALSE(ledger.suspicion_counts().empty());
}

}  // namespace
}  // namespace enclaves::core
