// UDP datagram transport: envelope-per-datagram delivery, size limits, and
// a full improved-protocol session with port-based routing — including a
// run with simulated datagram loss recovered by the retransmission layer.
#include <gtest/gtest.h>

#include <map>

#include "core/leader.h"
#include "core/member.h"
#include "net/udp.h"
#include "util/rng.h"

namespace enclaves::net {
namespace {

void pump(std::vector<UdpNode*> nodes, const std::function<bool()>& done,
          int spins = 4000) {
  for (int i = 0; i < spins && !done(); ++i) {
    for (auto* n : nodes) n->poll_once(1);
  }
}

TEST(Udp, BindEphemeralAndExchange) {
  UdpNode a, b;
  auto pa = a.bind(0);
  auto pb = b.bind(0);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_NE(*pa, *pb);

  std::vector<std::string> got;
  std::uint16_t seen_from = 0;
  b.set_callbacks({[&](std::uint16_t from, const wire::Envelope& e) {
    seen_from = from;
    got.push_back(to_string(e.body));
  }});
  ASSERT_TRUE(a.send_to(*pb, wire::Envelope{wire::Label::Ack, "a", "b",
                                            to_bytes("ping")})
                  .ok());
  pump({&a, &b}, [&] { return !got.empty(); });
  ASSERT_EQ(got, std::vector<std::string>{"ping"});
  EXPECT_EQ(seen_from, *pa);
}

TEST(Udp, OversizedEnvelopeRefusedAtSend) {
  UdpNode a;
  ASSERT_TRUE(a.bind(0).ok());
  wire::Envelope big{wire::Label::GroupData, "a", "*",
                     Bytes(UdpNode::kMaxDatagram + 1, 0)};
  auto s = a.send_to(12345, big);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::oversized);
}

TEST(Udp, SendWithoutBindFails) {
  UdpNode a;
  auto s = a.send_to(12345, wire::Envelope{wire::Label::Ack, "a", "b", {}});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::closed);
}

struct UdpWorld {
  UdpWorld() : rng(5), leader(core::LeaderConfig{"L",
                              core::RekeyPolicy::strict()}, rng) {
    auto port = leader_node.bind(0);
    EXPECT_TRUE(port.ok());
    leader_port = *port;
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      auto it = port_of.find(to);
      if (it != port_of.end()) (void)leader_node.send_to(it->second, e);
    });
    leader_node.set_callbacks({[this](std::uint16_t from,
                                      const wire::Envelope& e) {
      port_of[e.sender] = from;  // routing hint learned from traffic
      leader.handle(e);
    }});
  }

  core::Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto node = std::make_unique<UdpNode>();
    EXPECT_TRUE(node->bind(0).ok());
    auto member = std::make_unique<core::Member>(id, "L", pa, rng);
    auto* node_raw = node.get();
    auto* member_raw = member.get();
    member->set_send([this, node_raw](const std::string&, wire::Envelope e) {
      (void)node_raw->send_to(leader_port, e);
    });
    node->set_callbacks({[member_raw](std::uint16_t, const wire::Envelope& e) {
      member_raw->handle(e);
    }});
    nodes[id] = std::move(node);
    members[id] = std::move(member);
    return *member_raw;
  }

  std::vector<UdpNode*> all_nodes() {
    std::vector<UdpNode*> out = {&leader_node};
    for (auto& [id, n] : nodes) out.push_back(n.get());
    return out;
  }

  DeterministicRng rng;
  UdpNode leader_node;
  std::uint16_t leader_port = 0;
  core::Leader leader;
  std::map<std::string, std::uint16_t> port_of;
  std::map<std::string, std::unique_ptr<UdpNode>> nodes;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

TEST(Udp, FullProtocolSessionOverDatagrams) {
  UdpWorld w;
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");

  ASSERT_TRUE(alice.join().ok());
  pump(w.all_nodes(), [&] { return alice.connected() &&
                                   alice.has_group_key(); });
  ASSERT_TRUE(alice.connected());

  ASSERT_TRUE(bob.join().ok());
  pump(w.all_nodes(), [&] {
    return bob.connected() && bob.has_group_key() &&
           alice.epoch() == bob.epoch() && alice.view().size() == 2;
  });
  ASSERT_TRUE(bob.connected());

  Bytes bob_got;
  bob.set_event_handler([&](const core::GroupEvent& ev) {
    if (const auto* d = std::get_if<core::DataReceived>(&ev))
      bob_got = d->payload;
  });
  ASSERT_TRUE(alice.send_data(to_bytes("over udp")).ok());
  pump(w.all_nodes(), [&] { return !bob_got.empty(); });
  EXPECT_EQ(to_string(bob_got), "over udp");

  ASSERT_TRUE(alice.leave().ok());
  pump(w.all_nodes(), [&] { return w.leader.member_count() == 1; });
  EXPECT_EQ(w.leader.members(), std::vector<std::string>{"bob"});
}

TEST(Udp, LostDatagramRecoveredByRetransmission) {
  // Simulate loss at the APPLICATION boundary: suppress the leader's first
  // AuthKeyDist send, then drive the tick-based retransmission.
  UdpWorld w;
  auto pa = crypto::LongTermKey::random(w.rng);
  ASSERT_TRUE(w.leader.register_member("carol", pa).ok());

  UdpNode carol_node;
  ASSERT_TRUE(carol_node.bind(0).ok());
  core::Member carol("carol", "L", pa, w.rng);
  carol.set_send([&](const std::string&, wire::Envelope e) {
    (void)carol_node.send_to(w.leader_port, e);
  });
  carol_node.set_callbacks({[&](std::uint16_t, const wire::Envelope& e) {
    carol.handle(e);
  }});

  int keydist_sent = 0;
  w.leader.set_send([&](const std::string& to, wire::Envelope e) {
    if (e.label == wire::Label::AuthKeyDist && ++keydist_sent == 1)
      return;  // the first one vanishes into the network
    auto it = w.port_of.find(to);
    if (it != w.port_of.end()) (void)w.leader_node.send_to(it->second, e);
  });

  ASSERT_TRUE(carol.join().ok());
  std::vector<UdpNode*> nodes = {&w.leader_node, &carol_node};
  pump(nodes, [&] { return keydist_sent >= 1; }, 500);
  EXPECT_FALSE(carol.connected()) << "the key distribution was lost";

  for (int round = 0; round < 10 && !carol.connected(); ++round) {
    w.leader.tick();  // re-sends the cached AuthKeyDist
    carol.tick();     // re-sends the pending AuthInitReq
    pump(nodes, [&] { return carol.connected(); }, 200);
  }
  EXPECT_TRUE(carol.connected());
  // Let carol's AuthAckKey (sent on the last delivery) reach the leader.
  pump(nodes, [&] { return w.leader.is_member("carol"); }, 500);
  EXPECT_TRUE(w.leader.is_member("carol"));
}

}  // namespace
}  // namespace enclaves::net
