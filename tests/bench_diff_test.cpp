// bench_diff parsing and diff semantics: the header-only library behind
// tools/bench_diff, exercised on hand-built BENCH_<tag>.json blobs.
#include <gtest/gtest.h>

#include <string>

#include "tools/bench_diff_lib.h"

namespace enclaves::tools {
namespace {

// A minimal valid blob: one benchmark row, one protocol counter.
std::string blob_json(const std::string& tag, double real_time,
                      std::uint64_t counter_value,
                      const std::string& extra_counters = "") {
  return "{\"bench\":\"" + tag +
         "\",\"metrics_attached\":true,"
         "\"results\":[{\"name\":\"BM_Join\",\"iterations\":100,"
         "\"real_time\":" +
         std::to_string(real_time) +
         ",\"cpu_time\":" + std::to_string(real_time) +
         ",\"time_unit\":\"ns\"}],"
         "\"metrics\":{\"counters\":[{\"group\":\"L\",\"agent\":\"L\","
         "\"name\":\"relayed_total\",\"value\":" +
         std::to_string(counter_value) + "}" + extra_counters +
         "],\"gauges\":[],\"histograms\":[]}}";
}

TEST(BenchBlobParse, RoundTripsAllSections) {
  auto blob = BenchBlob::parse(blob_json("protocol_perf", 120.5, 7));
  ASSERT_TRUE(blob.ok()) << blob.error().to_string();
  EXPECT_EQ(blob->bench, "protocol_perf");
  EXPECT_TRUE(blob->metrics_attached);
  ASSERT_EQ(blob->results.size(), 1u);
  EXPECT_EQ(blob->results[0].name, "BM_Join");
  EXPECT_EQ(blob->results[0].iterations, 100u);
  EXPECT_DOUBLE_EQ(blob->results[0].real_time, 120.5);
  EXPECT_EQ(blob->results[0].time_unit, "ns");
  EXPECT_EQ(blob->metrics.counters.size(), 1u);
}

TEST(BenchBlobParse, RejectsMalformedInput) {
  EXPECT_FALSE(BenchBlob::parse("").ok());
  EXPECT_FALSE(BenchBlob::parse("not json").ok());
  EXPECT_FALSE(BenchBlob::parse("{\"bench\":\"x\"}").ok())
      << "missing results/metrics sections";
  EXPECT_FALSE(BenchBlob::parse(blob_json("t", 1, 1) + "garbage").ok())
      << "trailing garbage";
  EXPECT_FALSE(
      BenchBlob::parse("{\"bench\":\"t\",\"surprise\":1,"
                       "\"results\":[],\"metrics\":{\"counters\":[],"
                       "\"gauges\":[],\"histograms\":[]}}")
          .ok())
      << "unknown field";
}

TEST(BenchDiff, CleanRunReportsNoRegressions) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto cand = BenchBlob::parse(blob_json("t", 105, 9));
  ASSERT_TRUE(base.ok() && cand.ok());
  auto report = diff_blobs(*base, *cand);
  EXPECT_FALSE(report.failed());
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_EQ(report.to_string(), "ok    no regressions\n");
}

TEST(BenchDiff, TimeRegressionWarnsByDefaultFailsOnRequest) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto cand = BenchBlob::parse(blob_json("t", 150, 5));  // +50% > 30%
  ASSERT_TRUE(base.ok() && cand.ok());

  auto report = diff_blobs(*base, *cand);
  EXPECT_FALSE(report.failed());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("BM_Join"), std::string::npos);

  DiffOptions strict;
  strict.fail_on_time = true;
  EXPECT_TRUE(diff_blobs(*base, *cand, strict).failed());

  DiffOptions loose;
  loose.time_tolerance = 0.60;  // +50% now inside tolerance
  auto ok = diff_blobs(*base, *cand, loose);
  EXPECT_FALSE(ok.failed());
  EXPECT_TRUE(ok.warnings.empty());
}

TEST(BenchDiff, ImprovementIsANoteNotAFailure) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto cand = BenchBlob::parse(blob_json("t", 50, 5));
  ASSERT_TRUE(base.ok() && cand.ok());
  auto report = diff_blobs(*base, *cand);
  EXPECT_FALSE(report.failed());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("improved"), std::string::npos);
}

TEST(BenchDiff, DisappearedBenchmarkFails) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto cand = BenchBlob::parse(
      "{\"bench\":\"t\",\"metrics_attached\":true,\"results\":[],"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}}");
  ASSERT_TRUE(base.ok() && cand.ok());
  auto report = diff_blobs(*base, *cand);
  EXPECT_TRUE(report.failed());
}

TEST(BenchDiff, TagMismatchAndDetachedMetricsFail) {
  auto base = BenchBlob::parse(blob_json("alpha", 100, 5));
  auto cand = BenchBlob::parse(blob_json("beta", 100, 5));
  ASSERT_TRUE(base.ok() && cand.ok());
  EXPECT_TRUE(diff_blobs(*base, *cand).failed());

  auto detached = BenchBlob::parse(
      "{\"bench\":\"alpha\",\"metrics_attached\":false,"
      "\"results\":[{\"name\":\"BM_Join\",\"iterations\":100,"
      "\"real_time\":100,\"cpu_time\":100,\"time_unit\":\"ns\"}],"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}}");
  ASSERT_TRUE(detached.ok());
  EXPECT_TRUE(diff_blobs(*base, *detached).failed())
      << "candidate ran with ENCLAVES_BENCH_NO_METRICS";
}

TEST(BenchDiff, PresenceModeCatchesCountersGoingDark) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto dark = BenchBlob::parse(blob_json("t", 100, 0));
  auto drifted = BenchBlob::parse(blob_json("t", 100, 999));
  ASSERT_TRUE(base.ok() && dark.ok() && drifted.ok());

  auto report = diff_blobs(*base, *dark);
  ASSERT_TRUE(report.failed());
  EXPECT_NE(report.failures[0].find("went dark"), std::string::npos);

  // Magnitude drift is fine in presence mode (iteration counts vary)...
  EXPECT_FALSE(diff_blobs(*base, *drifted).failed());

  // ...but not in exact mode.
  DiffOptions exact;
  exact.counters = CounterMode::exact;
  EXPECT_TRUE(diff_blobs(*base, *drifted, exact).failed());
  EXPECT_FALSE(diff_blobs(*base, *base, exact).failed());
}

TEST(BenchDiff, NewCounterAndNewBenchmarkAreNotes) {
  auto base = BenchBlob::parse(blob_json("t", 100, 5));
  auto cand = BenchBlob::parse(blob_json(
      "t", 100, 5,
      ",{\"group\":\"security\",\"agent\":\"L\","
      "\"name\":\"refusals_total\",\"value\":3}"));
  ASSERT_TRUE(base.ok() && cand.ok());
  auto report = diff_blobs(*base, *cand);
  EXPECT_FALSE(report.failed());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("new counter"), std::string::npos);
}

}  // namespace
}  // namespace enclaves::tools
