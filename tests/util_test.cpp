// util/ and crypto key-type coverage: bytes, hex, Result/Status, RNGs,
// logging sink, typed keys.
#include <gtest/gtest.h>

#include <set>

#include "crypto/ct.h"
#include "crypto/keys.h"
#include "util/bytes.h"
#include "util/hex.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"

namespace enclaves {
namespace {

TEST(Bytes, ToFromString) {
  EXPECT_EQ(to_string(to_bytes("abc")), "abc");
  EXPECT_EQ(to_bytes(""), Bytes{});
  Bytes with_nul = {0x61, 0x00, 0x62};
  EXPECT_EQ(to_string(with_nul).size(), 3u);
}

TEST(Bytes, AppendAndConcat) {
  Bytes a = to_bytes("foo");
  append(a, to_bytes("bar"));
  EXPECT_EQ(to_string(a), "foobar");
  Bytes c = concat({to_bytes("x"), {}, to_bytes("yz")});
  EXPECT_EQ(to_string(c), "xyz");
}

TEST(Bytes, Equal) {
  EXPECT_TRUE(equal(to_bytes("ab"), to_bytes("ab")));
  EXPECT_FALSE(equal(to_bytes("ab"), to_bytes("ac")));
  EXPECT_FALSE(equal(to_bytes("ab"), to_bytes("abc")));
  EXPECT_TRUE(equal({}, {}));
}

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x7F, 0xFF, 0x10};
  EXPECT_EQ(to_hex(b), "007fff10");
  auto back = from_hex("007fff10");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(Hex, CaseInsensitiveDecode) {
  EXPECT_EQ(*from_hex("DeadBEEF"), *from_hex("deadbeef"));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_FALSE(from_hex("0g").has_value());
  EXPECT_TRUE(from_hex("").has_value());       // empty is fine
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.code(), Errc::ok);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err = make_error(Errc::stale, "too old");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::stale);
  EXPECT_EQ(err.error().to_string(), "stale: too old");
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = *std::move(r);
  EXPECT_EQ(*p, 5);
}

TEST(Status, SuccessAndFailure) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), Errc::ok);
  Status bad(Errc::io_error);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Errc::io_error);
}

TEST(Errc, AllNamesDefined) {
  for (auto c : {Errc::ok, Errc::malformed, Errc::truncated, Errc::oversized,
                 Errc::auth_failed, Errc::bad_key, Errc::unexpected,
                 Errc::stale, Errc::identity_mismatch, Errc::unknown_peer,
                 Errc::already_exists, Errc::closed, Errc::denied,
                 Errc::io_error, Errc::internal}) {
    EXPECT_STRNE(errc_name(c), "?");
  }
}

TEST(DeterministicRng, Reproducible) {
  DeterministicRng a(99), b(99), c(100);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
  DeterministicRng d(99), e(99);
  EXPECT_EQ(d.bytes(33), e.bytes(33));
}

TEST(DeterministicRng, BelowIsInRangeAndCoversValues) {
  DeterministicRng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(OsRng, ProducesDistinctOutput) {
  OsRng rng;
  EXPECT_NE(rng.bytes(32), rng.bytes(32));
}

TEST(Logging, SinkReceivesMessagesAboveThreshold) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& m) {
    lines.push_back(m);
  });
  auto old = log_level();
  set_log_level(LogLevel::info);
  ENCLAVES_LOG(info) << "visible " << 42;
  ENCLAVES_LOG(debug) << "hidden";
  set_log_level(old);
  set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "visible 42");
}

TEST(CtEqual, ConstantTimeSemantics) {
  using crypto::ct_equal;
  Bytes a = to_bytes("secret"), b = to_bytes("secret");
  EXPECT_TRUE(ct_equal(a, b));
  b[5] ^= 1;
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, to_bytes("secre")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(SecureWipe, ZeroesBuffer) {
  Bytes b = to_bytes("sensitive");
  crypto::secure_wipe(b);
  for (auto v : b) EXPECT_EQ(v, 0);
}

TEST(TypedKeys, RandomDistinctAndRoundTrip) {
  DeterministicRng rng(1);
  auto k1 = crypto::SessionKey::random(rng);
  auto k2 = crypto::SessionKey::random(rng);
  EXPECT_NE(k1, k2);
  auto copy = crypto::SessionKey::from_bytes(k1.to_bytes());
  EXPECT_EQ(copy, k1);
  EXPECT_EQ(k1.view().size(), crypto::kKeyBytes);
}

TEST(TypedKeys, DefaultIsZero) {
  crypto::GroupKey k;
  for (auto v : k.view()) EXPECT_EQ(v, 0);
}

TEST(ProtocolNonce, RandomAndComparable) {
  DeterministicRng rng(2);
  auto n1 = crypto::ProtocolNonce::random(rng);
  auto n2 = crypto::ProtocolNonce::random(rng);
  EXPECT_NE(n1, n2);
  EXPECT_EQ(crypto::ProtocolNonce::from_bytes(n1.to_bytes()), n1);
  EXPECT_EQ(n1.view().size(), crypto::kNonceBytes);
}

}  // namespace
}  // namespace enclaves
