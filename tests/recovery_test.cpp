// Operational runbook tests: full crash-and-recover cycles, leader restart
// from the persisted registry, stats snapshots.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/leader.h"
#include "core/member.h"
#include "core/registry.h"
#include "crypto/password.h"
#include "net/sim_network.h"
#include "util/rng.h"
#include "wire/payloads.h"
#include "wire/seal.h"

namespace enclaves::core {
namespace {

struct World {
  explicit World(std::uint64_t seed)
      : rng(seed), leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  Member& add(const std::string& id, crypto::LongTermKey pa) {
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    return attach_member(id, pa);
  }

  Member& attach_member(const std::string& id, crypto::LongTermKey pa) {
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
  std::map<std::string, std::unique_ptr<Member>> members;
};

// The full runbook for a crashed member: probe -> detect -> expel -> the
// member's replacement process rejoins with the same credential.
TEST(Recovery, CrashedMemberFullCycle) {
  SCOPED_TRACE("seed=1");
  World w(1);
  auto pa_alice = crypto::LongTermKey::random(w.rng);
  auto pa_bob = crypto::LongTermKey::random(w.rng);
  auto& alice = w.add("alice", pa_alice);
  w.add("bob", pa_bob);
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(w.members["bob"]->join().ok());
  w.net.run();

  // Bob's host dies. Its Member object (and session state) is GONE.
  w.net.detach("bob");
  w.members.erase("bob");

  // Runbook step 1-2: probe, tick until detected.
  w.leader.probe_liveness();
  w.net.run();
  for (int i = 0; i < 5; ++i) {
    w.leader.tick();
    w.net.run();
  }
  ASSERT_EQ(w.leader.stalled_members(5), std::vector<std::string>{"bob"});

  // Step 3: expel; survivors rekey (strict policy), views shrink.
  auto acted = w.leader.expel_stalled(5);
  w.net.run();
  ASSERT_EQ(acted, std::vector<std::string>{"bob"});
  EXPECT_EQ(w.members["alice"]->view(), std::vector<std::string>{"alice"});

  // Step 4: bob's machine comes back with the SAME credential and rejoins
  // from scratch (a brand-new Member instance: no session survives a crash).
  auto& bob2 = w.attach_member("bob", pa_bob);
  ASSERT_TRUE(bob2.join().ok());
  w.net.run();
  EXPECT_TRUE(bob2.connected());
  EXPECT_EQ(w.leader.member_count(), 2u);
  EXPECT_EQ(bob2.epoch(), w.leader.epoch());
  EXPECT_EQ(bob2.view(), (std::vector<std::string>{"alice", "bob"}));
}

// Leader restart: membership sessions are gone (members must rejoin), but
// the credential registry persists, so nobody re-registers passwords.
TEST(Recovery, LeaderRestartFromRegistry) {
  Bytes storage_key = to_bytes("ops");
  Registry registry;
  auto pa = crypto::derive_long_term_key("alice", "pw", {16, "recovery"});
  ASSERT_TRUE(registry.add(Credential{"alice", pa, "password"}).ok());
  Bytes persisted = registry.serialize(storage_key);

  // First leader incarnation.
  {
    SCOPED_TRACE("seed=2");
    World w(2);
    auto restored = Registry::deserialize(persisted, storage_key);
    ASSERT_TRUE(restored.ok());
    restored->install(w.leader);
    auto& alice = w.attach_member("alice", pa);
    ASSERT_TRUE(alice.join().ok());
    w.net.run();
    ASSERT_TRUE(alice.connected());
  }  // leader process "dies"

  // Second incarnation: fresh Leader, same registry blob; the member's old
  // session is meaningless (fresh keys), a plain rejoin works.
  {
    SCOPED_TRACE("seed=3");
    World w(3);
    auto restored = Registry::deserialize(persisted, storage_key);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->install(w.leader), 1u);
    auto& alice = w.attach_member("alice", pa);
    ASSERT_TRUE(alice.join().ok());
    w.net.run();
    EXPECT_TRUE(alice.connected());
    EXPECT_TRUE(w.leader.is_member("alice"));
  }
}

TEST(Recovery, LeaderSnapshotRoundTripAndTamperRejection) {
  SCOPED_TRACE("seed=6");
  DeterministicRng rng(6);
  Bytes storage_key = to_bytes("snapshot-ops");
  Registry reg;
  ASSERT_TRUE(
      reg.add(Credential{"alice", crypto::LongTermKey::random(rng), "pw"})
          .ok());
  ASSERT_TRUE(
      reg.add(Credential{"bob", crypto::LongTermKey::random(rng), "pw"}).ok());
  LeaderSnapshot snap{reg, 42};

  Bytes blob = snap.serialize(storage_key);
  auto back = LeaderSnapshot::deserialize(blob, storage_key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, snap);

  // Any bit flip is detected by the outer MAC.
  Bytes tampered = blob;
  tampered[8] ^= 1;
  EXPECT_FALSE(LeaderSnapshot::deserialize(tampered, storage_key).ok());
  // The wrong storage key opens nothing.
  EXPECT_FALSE(LeaderSnapshot::deserialize(blob, to_bytes("wrong")).ok());

  // install() re-arms a fresh leader: credentials present, and the NEXT
  // epoch strictly exceeds everything distributed before the crash.
  SCOPED_TRACE("seed=7");
  World w(7);
  EXPECT_EQ(back->install(w.leader), 2u);
  auto& alice = w.attach_member("alice", reg.find("alice")->pa);
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  EXPECT_GT(w.leader.epoch(), 42u) << "epoch floor must hold after restore";
}

// The runbook assertion the chaos suite relies on: a member expelled via
// expel_stalled and later rejoining gets a FRESH session key and can never
// be talked to under the pre-expulsion group key again.
TEST(Recovery, ExpelStalledRejoinNeverSeesOldKeys) {
  SCOPED_TRACE("seed=8");
  World w(8);
  auto pa_a = crypto::LongTermKey::random(w.rng);
  auto pa_b = crypto::LongTermKey::random(w.rng);
  auto& alice = w.add("alice", pa_a);
  w.add("bob", pa_b);
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(w.members["bob"]->join().ok());
  w.net.run();

  const crypto::SessionKey old_ka = w.leader.session("bob")->session_key();
  const crypto::GroupKey old_kg = w.leader.group_key();
  const std::uint64_t old_epoch = w.leader.epoch();

  // Bob's host freezes (messages to it vanish; nothing comes back).
  w.net.detach("bob");
  w.leader.probe_liveness();
  w.net.run();
  for (int i = 0; i < 5; ++i) {
    w.leader.tick();
    w.net.run();
  }
  ASSERT_EQ(w.leader.expel_stalled(5), std::vector<std::string>{"bob"});
  w.net.run();
  EXPECT_GT(w.leader.epoch(), old_epoch) << "expulsion must rekey (strict)";

  // Bob returns with the same credential; the handshake issues a fresh Ka.
  auto& bob2 = w.attach_member("bob", pa_b);
  ASSERT_TRUE(bob2.join().ok());
  w.net.run();
  ASSERT_TRUE(bob2.connected());
  EXPECT_NE(w.leader.session("bob")->session_key(), old_ka);
  EXPECT_NE(bob2.session().session_key(), old_ka);
  EXPECT_EQ(bob2.epoch(), w.leader.epoch());
  EXPECT_NE(w.leader.group_key(), old_kg);

  // Data sealed under the pre-expulsion group key is dead to everyone.
  bool bob2_got_data = false;
  bob2.set_event_handler([&bob2_got_data](const GroupEvent& ev) {
    if (std::get_if<DataReceived>(&ev)) bob2_got_data = true;
  });
  DeterministicRng stale_rng(4711);
  wire::GroupDataPayload stale{"alice", old_epoch, 999, to_bytes("old")};
  auto stale_env = wire::make_sealed(
      crypto::default_aead(), old_kg.view(), stale_rng, wire::Label::GroupData,
      "alice", wire::kGroupRecipient, wire::encode(stale));
  const std::uint64_t bob_rejects = bob2.data_rejects();
  const std::uint64_t leader_rejects = w.leader.rejected_inputs();
  w.net.inject("bob", stale_env);
  w.net.inject("L", stale_env);
  w.net.run();
  EXPECT_FALSE(bob2_got_data);
  EXPECT_GT(bob2.data_rejects(), bob_rejects);
  EXPECT_GT(w.leader.rejected_inputs(), leader_rejects);
}

TEST(Recovery, StatsSnapshotTracksLifecycle) {
  SCOPED_TRACE("seed=4");
  World w(4);
  auto pa = crypto::LongTermKey::random(w.rng);
  auto& alice = w.add("alice", pa);
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.leave().ok());
  w.net.run();

  auto s = w.leader.stats();
  EXPECT_EQ(s.members, 0u);
  EXPECT_EQ(s.joins, 1u);
  EXPECT_EQ(s.leaves, 1u);
  EXPECT_GE(s.rekeys, 1u);
  EXPECT_EQ(s.expulsions, 0u);

  std::string line = s.to_string();
  EXPECT_NE(line.find("members=0"), std::string::npos);
  EXPECT_NE(line.find("joins=1"), std::string::npos);
  EXPECT_NE(line.find("leaves=1"), std::string::npos);
}

}  // namespace
}  // namespace enclaves::core
