// SpanTracker conformance: the causal span graph stitched from the event
// trace, for both synthetic event sequences (exact span fields) and the
// canonical protocol scenarios (committed golden span trees, the
// span-level sibling of tests/golden_trace_test.cpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "ha/failover.h"
#include "ha/replicator.h"
#include "ha/standby.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

using obs::Span;
using obs::SpanKind;
using obs::SpanTracker;
using obs::TraceEvent;
using obs::TraceKind;

// ---------------------------------------------------------------------------
// Synthetic event sequences: exact span fields.

TEST(SpanTracker, JoinHandshakeWithRetries) {
  std::vector<TraceEvent> events{
      {0, TraceKind::member_phase, "L", "alice", "L",
       "NotConnected->WaitingForKey", 0},
      {1, TraceKind::retransmit, "L", "alice", "L", "AuthInitReq", 0},
      {2, TraceKind::retransmit, "L", "L", "alice", "AuthKeyDist", 0},
      {3, TraceKind::member_phase, "L", "alice", "L",
       "WaitingForKey->Connected", 0},
  };
  auto spans = SpanTracker::build(events);
  ASSERT_EQ(spans.size(), 1u);
  const Span& s = spans[0];
  EXPECT_EQ(s.kind, SpanKind::join);
  EXPECT_EQ(s.agent, "alice");
  EXPECT_EQ(s.peer, "L");
  EXPECT_EQ(s.start, 0u);
  EXPECT_EQ(s.end, 3u);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.retries, 2u);  // member AuthInitReq + leader AuthKeyDist
  EXPECT_EQ(s.participants, (std::vector<std::string>{"alice", "L"}));
}

TEST(SpanTracker, AbandonedJoinStaysIncomplete) {
  std::vector<TraceEvent> events{
      {0, TraceKind::member_phase, "L", "alice", "L",
       "NotConnected->WaitingForKey", 0},
      {4, TraceKind::retransmit, "L", "alice", "L", "AuthInitReq", 0},
  };
  auto spans = SpanTracker::build(events);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].complete);
  EXPECT_EQ(spans[0].retries, 1u);
}

TEST(SpanTracker, AdminExchangeStopAndWait) {
  std::vector<TraceEvent> events{
      {1, TraceKind::admin_send, "L", "L", "bob", "new_group_key", 0},
      {2, TraceKind::retransmit, "L", "L", "bob", "AdminMsg", 0},
      {3, TraceKind::admin_ack, "L", "L", "bob", "", 0},
      {4, TraceKind::admin_send, "L", "L", "bob", "member_list", 0},
      {5, TraceKind::admin_ack, "L", "L", "bob", "", 0},
  };
  auto spans = SpanTracker::build(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::admin_exchange);
  EXPECT_EQ(spans[0].detail, "new_group_key");
  EXPECT_EQ(spans[0].retries, 1u);
  EXPECT_TRUE(spans[0].complete);
  EXPECT_EQ(spans[0].start, 1u);
  EXPECT_EQ(spans[0].end, 3u);
  EXPECT_EQ(spans[1].detail, "member_list");
  EXPECT_EQ(spans[1].retries, 0u);
  EXPECT_TRUE(spans[1].complete);
}

TEST(SpanTracker, RekeyPropagationChildren) {
  std::vector<TraceEvent> events{
      {0, TraceKind::rekey, "L", "L", "", "", 2},
      {1, TraceKind::rekey, "L", "alice", "L", "", 2},
      {3, TraceKind::rekey, "L", "bob", "L", "", 2},
  };
  auto spans = SpanTracker::build(events);
  ASSERT_EQ(spans.size(), 3u);
  const Span& mint = spans[0];
  EXPECT_EQ(mint.kind, SpanKind::rekey);
  EXPECT_EQ(mint.value, 2u);
  EXPECT_TRUE(mint.complete);
  EXPECT_EQ(mint.end, 3u);  // last member applied
  EXPECT_EQ(mint.participants,
            (std::vector<std::string>{"L", "alice", "bob"}));
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(spans[i].kind, SpanKind::rekey_delivery);
    EXPECT_EQ(spans[i].parent, mint.id);
    EXPECT_TRUE(spans[i].complete);
  }
}

TEST(SpanTracker, FaultVerdictAttachesToTheSpanItHit) {
  std::vector<TraceEvent> events{
      {0, TraceKind::member_phase, "L", "alice", "L",
       "NotConnected->WaitingForKey", 0},
      {0, TraceKind::fault_drop, "net", "alice", "L", "AuthInitReq", 0},
      {1, TraceKind::retransmit, "L", "alice", "L", "AuthInitReq", 0},
      {2, TraceKind::member_phase, "L", "alice", "L",
       "WaitingForKey->Connected", 0},
      // A data-plane fault hits no tracked exchange and attaches nowhere.
      {3, TraceKind::fault_drop, "net", "bob", "L", "GroupData", 0},
  };
  auto spans = SpanTracker::build(events);
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].kind, "fault_drop");
  EXPECT_EQ(spans[0].annotations[0].detail, "AuthInitReq");
}

TEST(SpanTracker, BuildIsDeterministic) {
  std::vector<TraceEvent> events{
      {0, TraceKind::member_phase, "L", "a", "L",
       "NotConnected->WaitingForKey", 0},
      {0, TraceKind::rekey, "L", "L", "", "", 1},
      {1, TraceKind::member_phase, "L", "a", "L", "WaitingForKey->Connected",
       0},
      {1, TraceKind::rekey, "L", "a", "L", "", 1},
  };
  EXPECT_EQ(SpanTracker::build(events), SpanTracker::build(events));
}

TEST(SpanJsonl, ExportsTreeFieldsAndEscapes) {
  std::vector<TraceEvent> events{
      {0, TraceKind::admin_send, "g\"1", "L", "bob", "notice\n", 0},
      {2, TraceKind::admin_ack, "g\"1", "L", "bob", "", 0},
  };
  const std::string jsonl = obs::spans_to_jsonl(SpanTracker::build(events));
  EXPECT_NE(jsonl.find("\"kind\":\"admin_exchange\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"group\":\"g\\\"1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"detail\":\"notice\\n\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"complete\":true"), std::string::npos);
  EXPECT_EQ(jsonl.find('\n'), jsonl.rfind("\n"));  // one line, one span
}

TEST(AttachEvidence, LinksEntryToTheInterruptedSpan) {
  std::vector<TraceEvent> events{
      {0, TraceKind::member_phase, "L", "carol", "L",
       "NotConnected->WaitingForKey", 0},
  };
  auto spans = SpanTracker::build(events);
  std::vector<obs::SecurityEvidence> evidence{
      {1, obs::EvidenceKind::aead_open_failure, "L", "carol", "L",
       "AuthKeyDist", 0},
      // No span ever involved mallory's exchange: attaches nowhere.
      {1, obs::EvidenceKind::unknown_sender, "X", "x-observer", "mallory",
       "AuthInitReq", 0},
  };
  EXPECT_EQ(obs::attach_evidence(spans, evidence), 1u);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].kind, "evidence:aead_open_failure");
  EXPECT_EQ(spans[0].annotations[0].detail, "L: AuthKeyDist");
}

// ---------------------------------------------------------------------------
// Golden span trees from the canonical scenarios (same harness as
// golden_trace_test.cpp).

struct TracedWorld {
  explicit TracedWorld(std::uint64_t seed,
                       RekeyPolicy policy = RekeyPolicy::strict())
      : TracedWorld(seed, LeaderConfig{"L", policy}) {}

  TracedWorld(std::uint64_t seed, LeaderConfig config)
      : rng(seed), leader(std::move(config), rng), sink(trace) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  std::string tree() const {
    return obs::format_span_tree(SpanTracker::build(trace.events()));
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
  obs::TraceLog trace;
  obs::ScopedTraceSink sink;
  std::map<std::string, std::unique_ptr<Member>> members;
};

std::string strip_trailing_blanks(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    auto end = line.find_last_not_of(' ');
    out.append(line, 0, end == std::string::npos ? 0 : end + 1);
    out += '\n';
  }
  return out;
}

// One member joins, the group rekeys to epoch 1 and ships the view, a
// Notice probe round-trips, the member leaves. The exchange-level view of
// GoldenTrace.JoinNoticeLeaveHappyPath.
TEST(GoldenSpanTree, JoinNoticeLeaveHappyPath) {
  TracedWorld w(42);
  auto& alice = w.add("alice");

  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  w.leader.probe_liveness();
  w.net.run();
  ASSERT_TRUE(alice.leave().ok());
  w.net.run();

  const std::string golden =
      "#1 join                  alice      -> L          @0..0 ok\n"
      "#2 rekey                 L                        @0..0 ok =1\n"
      "  #4 rekey_delivery      alice      -> L          @0..0 ok =1\n"
      "#3 admin_exchange        L          -> alice      @0..0 ok [new_group_key]\n"
      "#5 admin_exchange        L          -> alice      @0..0 ok [member_list]\n"
      "#6 admin_exchange        L          -> alice      @0..0 ok [notice]\n";
  EXPECT_EQ(strip_trailing_blanks(w.tree()), golden);
}

// Second member joining an established group: the strict policy's rekey
// fans out to everyone — the rekey span gets one delivery child per member.
TEST(GoldenSpanTree, SecondJoinRekeyFansOut) {
  TracedWorld w(43);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  w.trace.clear();

  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.connected());

  const std::string golden =
      "#1 join                  bob        -> L          @0..0 ok\n"
      "#2 rekey                 L                        @0..0 ok =2\n"
      "  #5 rekey_delivery      alice      -> L          @0..0 ok =2\n"
      "  #6 rekey_delivery      bob        -> L          @0..0 ok =2\n"
      "#3 admin_exchange        L          -> alice      @0..0 ok [new_group_key]\n"
      "#4 admin_exchange        L          -> bob        @0..0 ok [new_group_key]\n"
      "#7 admin_exchange        L          -> alice      @0..0 ok [member_joined]\n"
      "#8 admin_exchange        L          -> bob        @0..0 ok [member_list]\n";
  EXPECT_EQ(strip_trailing_blanks(w.tree()), golden);
}

// Tree-mode rekeys at group scale: depth 5 (32 leaves) so 16 members never
// trigger a growth rebuild, and each rekey span carries one rekey_level
// child per rotated tree level — the O(log N) shape, visible in the span
// tree next to the full 16-member delivery fan-in.
LeaderConfig keytree_world_config() {
  LeaderConfig config;
  config.id = "L";
  config.rekey = RekeyPolicy::tree();
  config.keytree_depth = 5;
  return config;
}

std::vector<std::string> sixteen_ids() {
  std::vector<std::string> ids;
  for (int i = 1; i <= 16; ++i)
    ids.push_back("m" + std::string(i < 10 ? "0" : "") + std::to_string(i));
  return ids;
}

TEST(GoldenSpanTree, KeyTreeSixteenthJoinRekeyLevels) {
  TracedWorld w(77, keytree_world_config());
  auto ids = sixteen_ids();
  for (const auto& id : ids) w.add(id);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(w.members[ids[static_cast<std::size_t>(i)]]->join().ok());
    w.net.run();
  }
  w.trace.clear();

  ASSERT_TRUE(w.members["m16"]->join().ok());
  w.net.run();
  ASSERT_TRUE(w.members["m16"]->connected());

  // The rekey span owns five rekey_level children (one per rotated tree
  // level, deepest first) plus the 16-member delivery fan-in.
  const std::string golden =
      "#1 join                  m16        -> L          @0..0 ok\n"
      "#2 admin_exchange        L          -> m16        @0..0 ok [keytree_assign]\n"
      "#3 rekey                 L                        @0..0 ok =16\n"
      "  #4 rekey_level         L                        @0..0 ok [lvl4] =16\n"
      "  #5 rekey_level         L                        @0..0 ok [lvl3] =16\n"
      "  #6 rekey_level         L                        @0..0 ok [lvl2] =16\n"
      "  #7 rekey_level         L                        @0..0 ok [lvl1] =16\n"
      "  #8 rekey_level         L                        @0..0 ok [lvl0] =16\n"
      "  #24 rekey_delivery     m01        -> L          @0..0 ok =16\n"
      "  #25 rekey_delivery     m02        -> L          @0..0 ok =16\n"
      "  #26 rekey_delivery     m03        -> L          @0..0 ok =16\n"
      "  #27 rekey_delivery     m04        -> L          @0..0 ok =16\n"
      "  #28 rekey_delivery     m05        -> L          @0..0 ok =16\n"
      "  #29 rekey_delivery     m06        -> L          @0..0 ok =16\n"
      "  #30 rekey_delivery     m07        -> L          @0..0 ok =16\n"
      "  #31 rekey_delivery     m08        -> L          @0..0 ok =16\n"
      "  #32 rekey_delivery     m09        -> L          @0..0 ok =16\n"
      "  #33 rekey_delivery     m10        -> L          @0..0 ok =16\n"
      "  #34 rekey_delivery     m11        -> L          @0..0 ok =16\n"
      "  #35 rekey_delivery     m12        -> L          @0..0 ok =16\n"
      "  #36 rekey_delivery     m13        -> L          @0..0 ok =16\n"
      "  #37 rekey_delivery     m14        -> L          @0..0 ok =16\n"
      "  #38 rekey_delivery     m15        -> L          @0..0 ok =16\n"
      "  #39 rekey_delivery     m16        -> L          @0..0 ok =16\n"
      "#9 admin_exchange        L          -> m01        @0..0 ok [member_joined]\n"
      "#10 admin_exchange       L          -> m02        @0..0 ok [member_joined]\n"
      "#11 admin_exchange       L          -> m03        @0..0 ok [member_joined]\n"
      "#12 admin_exchange       L          -> m04        @0..0 ok [member_joined]\n"
      "#13 admin_exchange       L          -> m05        @0..0 ok [member_joined]\n"
      "#14 admin_exchange       L          -> m06        @0..0 ok [member_joined]\n"
      "#15 admin_exchange       L          -> m07        @0..0 ok [member_joined]\n"
      "#16 admin_exchange       L          -> m08        @0..0 ok [member_joined]\n"
      "#17 admin_exchange       L          -> m09        @0..0 ok [member_joined]\n"
      "#18 admin_exchange       L          -> m10        @0..0 ok [member_joined]\n"
      "#19 admin_exchange       L          -> m11        @0..0 ok [member_joined]\n"
      "#20 admin_exchange       L          -> m12        @0..0 ok [member_joined]\n"
      "#21 admin_exchange       L          -> m13        @0..0 ok [member_joined]\n"
      "#22 admin_exchange       L          -> m14        @0..0 ok [member_joined]\n"
      "#23 admin_exchange       L          -> m15        @0..0 ok [member_joined]\n"
      "#40 admin_exchange       L          -> m16        @0..0 ok [member_list]\n";
  EXPECT_EQ(strip_trailing_blanks(w.tree()), golden);
}

TEST(GoldenSpanTree, KeyTreeExpelRekeyLevels) {
  TracedWorld w(77, keytree_world_config());
  auto ids = sixteen_ids();
  for (const auto& id : ids) w.add(id);
  for (const auto& id : ids) {
    ASSERT_TRUE(w.members[id]->join().ok());
    w.net.run();
  }
  w.trace.clear();

  ASSERT_TRUE(w.leader.expel("m05", "for cause").ok());
  w.net.run();
  ASSERT_FALSE(w.members["m05"]->connected());

  // Same O(log N) shape on expulsion: five rotated levels under the rekey
  // span, and fifteen deliveries — m05's path was pruned, so it never
  // installs epoch 17 and contributes no rekey_delivery child.
  const std::string golden =
      "#1 admin_exchange        L          -> m01        @0..0 ok [member_left]\n"
      "#2 admin_exchange        L          -> m02        @0..0 ok [member_left]\n"
      "#3 admin_exchange        L          -> m03        @0..0 ok [member_left]\n"
      "#4 admin_exchange        L          -> m04        @0..0 ok [member_left]\n"
      "#5 admin_exchange        L          -> m06        @0..0 ok [member_left]\n"
      "#6 admin_exchange        L          -> m07        @0..0 ok [member_left]\n"
      "#7 admin_exchange        L          -> m08        @0..0 ok [member_left]\n"
      "#8 admin_exchange        L          -> m09        @0..0 ok [member_left]\n"
      "#9 admin_exchange        L          -> m10        @0..0 ok [member_left]\n"
      "#10 admin_exchange       L          -> m11        @0..0 ok [member_left]\n"
      "#11 admin_exchange       L          -> m12        @0..0 ok [member_left]\n"
      "#12 admin_exchange       L          -> m13        @0..0 ok [member_left]\n"
      "#13 admin_exchange       L          -> m14        @0..0 ok [member_left]\n"
      "#14 admin_exchange       L          -> m15        @0..0 ok [member_left]\n"
      "#15 admin_exchange       L          -> m16        @0..0 ok [member_left]\n"
      "#16 rekey                L                        @0..0 ok =17\n"
      "  #17 rekey_level        L                        @0..0 ok [lvl4] =17\n"
      "  #18 rekey_level        L                        @0..0 ok [lvl3] =17\n"
      "  #19 rekey_level        L                        @0..0 ok [lvl2] =17\n"
      "  #20 rekey_level        L                        @0..0 ok [lvl1] =17\n"
      "  #21 rekey_level        L                        @0..0 ok [lvl0] =17\n"
      "  #22 rekey_delivery     m01        -> L          @0..0 ok =17\n"
      "  #23 rekey_delivery     m02        -> L          @0..0 ok =17\n"
      "  #24 rekey_delivery     m03        -> L          @0..0 ok =17\n"
      "  #25 rekey_delivery     m04        -> L          @0..0 ok =17\n"
      "  #26 rekey_delivery     m06        -> L          @0..0 ok =17\n"
      "  #27 rekey_delivery     m07        -> L          @0..0 ok =17\n"
      "  #28 rekey_delivery     m08        -> L          @0..0 ok =17\n"
      "  #29 rekey_delivery     m09        -> L          @0..0 ok =17\n"
      "  #30 rekey_delivery     m10        -> L          @0..0 ok =17\n"
      "  #31 rekey_delivery     m11        -> L          @0..0 ok =17\n"
      "  #32 rekey_delivery     m12        -> L          @0..0 ok =17\n"
      "  #33 rekey_delivery     m13        -> L          @0..0 ok =17\n"
      "  #34 rekey_delivery     m14        -> L          @0..0 ok =17\n"
      "  #35 rekey_delivery     m15        -> L          @0..0 ok =17\n"
      "  #36 rekey_delivery     m16        -> L          @0..0 ok =17\n";
  EXPECT_EQ(strip_trailing_blanks(w.tree()), golden);
}

// The canonical failover: crash -> ha suspicion -> promotion -> the member
// suspects, retargets and re-authenticates above the fence. The member's
// re-join handshake becomes a child of the failover span.
TEST(GoldenSpanTree, FailoverCrashSuspicionPromotionRejoin) {
  net::SimNetwork net;
  DeterministicRng rng(4242);
  obs::TraceLog trace;
  obs::ScopedTraceSink sink(trace);
  auto send = [&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  };

  auto repl_key = crypto::SessionKey::random(rng);
  Leader active(LeaderConfig{"L", RekeyPolicy::strict()}, rng);
  active.set_send(send);
  ha::ReplicatorConfig rc;
  rc.repl_key = repl_key;
  rc.snapshot_interval = 0;
  rc.heartbeat_interval = 0;
  ha::LeaderReplicator replicator(active, rc, rng);
  replicator.set_send(send);
  net.attach("L", [&](const wire::Envelope& e) {
    if (e.label == wire::Label::ReplAck)
      replicator.handle(e);
    else
      active.handle(e);
  });

  ha::StandbyConfig sc;
  sc.repl_key = repl_key;
  ha::StandbyLeader standby(sc, rng);
  standby.set_send(send);
  std::unique_ptr<Leader> promoted;
  ha::FailoverConfig fc;
  fc.suspect_after = 2;
  fc.epoch_fence = 1000;
  fc.promoted.id = "L2";
  fc.promoted.rekey = RekeyPolicy::strict();
  ha::FailoverController controller(standby, fc);
  net.attach("L2", [&](const wire::Envelope& e) {
    if (e.label == wire::Label::ReplDelta ||
        e.label == wire::Label::ReplSnapshot ||
        e.label == wire::Label::ReplHeartbeat)
      standby.handle(e);
    else if (promoted)
      promoted->handle(e);
  });
  replicator.start();

  auto pa = crypto::LongTermKey::random(rng);
  ASSERT_TRUE(active.register_member("alice", pa).ok());
  Member alice("alice", "L", pa, rng);
  alice.set_send(send);
  alice.set_suspect_after(3);
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  alice.set_failover_targets({"L", "L2"});
  net.attach("alice", [&](const wire::Envelope& e) { alice.handle(e); });
  ASSERT_TRUE(alice.join().ok());
  net.run();
  ASSERT_TRUE(alice.connected());
  trace.clear();

  net.detach("L");
  for (int t = 0;
       t < 20 && !(promoted && alice.connected() && alice.epoch() > 1000u);
       ++t) {
    alice.tick();
    if (auto l = controller.tick()) {
      promoted = std::move(l);
      promoted->set_send(send);
    }
    net.run();
  }
  ASSERT_TRUE(promoted);
  ASSERT_TRUE(alice.connected());

  // The member's re-join handshake nests under the failover span; the
  // promoted leader's own exchanges sit at @0 because a fresh incarnation's
  // virtual clock starts at its promotion.
  const std::string golden =
      "#1 failover              L2                       @2..3 ok [active_silent] =1001\n"
      "  ! @2 suspect [active_silent] =2\n"
      "  ! @2 promote [promoted] =1001\n"
      "  ! @3 suspect [alice]\n"
      "  ! @3 rejoin [alice]\n"
      "  ! @3 rejoin [alice]\n"
      "  #2 join                alice      -> L2         @3..3 ok\n"
      "#3 rekey                 L2                       @0..3 ok =1002\n"
      "  #5 rekey_delivery      alice      -> L2         @3..3 ok =1002\n"
      "#4 admin_exchange        L2         -> alice      @0..0 ok [new_group_key]\n"
      "#6 admin_exchange        L2         -> alice      @0..0 ok [member_list]\n";
  EXPECT_EQ(strip_trailing_blanks(obs::format_span_tree(
                SpanTracker::build(trace.events()))),
            golden);
}

// A deterministic lossy join: the first packet (alice's AuthInitReq) dies
// in a scheduled partition window, the retry machinery recovers, and the
// span records both the fault annotation and the retry.
TEST(SpanTracker, LossyJoinRecordsFaultAndRetry) {
  net::FaultPlan plan;
  plan.partitions.push_back({/*from_packet=*/0, /*until_packet=*/1, {"L"}});
  net::FaultInjector injector(plan, 7);
  TracedWorld w(44);
  w.net.set_tap(injector.tap());
  auto& alice = w.add("alice");

  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_FALSE(alice.connected());  // the AuthInitReq died
  for (int t = 0; t < 10 && !alice.connected(); ++t) {
    alice.tick();
    w.net.run();
  }
  ASSERT_TRUE(alice.connected());

  auto spans = SpanTracker::build(w.trace.events());
  ASSERT_FALSE(spans.empty());
  const Span& join = spans[0];
  ASSERT_EQ(join.kind, SpanKind::join);
  EXPECT_TRUE(join.complete);
  EXPECT_GE(join.retries, 1u);
  ASSERT_FALSE(join.annotations.empty());
  EXPECT_EQ(join.annotations[0].kind, "fault_drop");
  EXPECT_EQ(join.annotations[0].detail, "AuthInitReq");
}

}  // namespace
}  // namespace enclaves::core
