// enclaves_top rendering tests: sparkline scaling, the golden dashboard
// frame (byte-exact, like golden_trace_test for the event chart), and
// replay-mode frame construction from dumped artifacts.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tools/enclaves_top_lib.h"

namespace enclaves::top {
namespace {

TEST(Sparkline, ScalesToMaxAndTruncatesToWidth) {
  EXPECT_EQ(sparkline({}, 10), "");
  EXPECT_EQ(sparkline({0, 0, 0}, 10), "▁▁▁");
  EXPECT_EQ(sparkline({1, 2, 4, 8}, 10), "▁▂▄█");
  // Width keeps the newest points.
  EXPECT_EQ(sparkline({9, 9, 1, 8}, 2), "▁█");
}

TopFrame golden_frame() {
  TopFrame frame;
  frame.tick = 128;
  frame.verdict.tick = 128;
  frame.verdict.windows = 7;

  obs::GroupHealth group;
  group.state = obs::HealthState::degraded;
  group.why = "peer m1: 4 retransmits/reanswers in window";

  obs::PeerHealth m0;
  m0.window_retransmits = 1;
  group.peers["m0"] = m0;

  obs::PeerHealth m1;
  m1.state = obs::HealthState::degraded;
  m1.why = "4 retransmits/reanswers in window";
  m1.suspicion = 2;
  m1.window_retransmits = 4;
  group.peers["m1"] = m1;

  // A partitioned member mid-heal: its offline op-log is replaying, and the
  // oplog_depth gauge shows what is still queued.
  obs::PeerHealth m2;
  m2.state = obs::HealthState::healing;
  m2.why = "2 reconciliation signal(s) in window";
  m2.window_partition_signals = 1;
  m2.window_reconcile_signals = 2;
  group.peers["m2"] = m2;
  frame.snapshot.gauges[obs::MetricKey{"L", "m2", "oplog_depth"}] = 5;

  frame.verdict.groups["L"] = group;
  frame.rates["retransmits_total"] = {0, 1, 4, 2, 0};
  frame.ledger_tail = {
      "{\"tick\":90,\"kind\":\"replayed_seq\",\"accused\":\"m1\"}",
      "{\"tick\":91,\"kind\":\"stale_nonce\",\"accused\":\"m1\"}",
  };
  return frame;
}

TEST(RenderFrame, GoldenDashboard) {
  const std::string expected =
      "enclaves_top — tick 128 (7 window(s))  overall: degraded\n"
      "\n"
      "group L: degraded — peer m1: 4 retransmits/reanswers in window\n"
      "  peer    state         susp  rt/ref/susp/part  oplog  why\n"
      "  m0      healthy       0     1/0/0/0           0\n"
      "  m1      degraded      2     4/0/0/0           0      "
      "4 retransmits/reanswers in window\n"
      "  m2      healing       0     0/0/0/1           5      "
      "2 reconciliation signal(s) in window\n"
      "\n"
      "rates (per sample):\n"
      "  retransmits_total▁▂█▄▁  (+7)\n"
      "\n"
      "ledger tail:\n"
      "  {\"tick\":90,\"kind\":\"replayed_seq\",\"accused\":\"m1\"}\n"
      "  {\"tick\":91,\"kind\":\"stale_nonce\",\"accused\":\"m1\"}\n";
  EXPECT_EQ(render_frame(golden_frame()), expected);
}

TEST(RenderFrame, HealthyFrameIsMinimal) {
  TopFrame frame;
  frame.tick = 4;
  EXPECT_EQ(render_frame(frame),
            "enclaves_top — tick 4 (0 window(s))  overall: healthy\n");
}

TEST(FrameFromReplay, BuildsVerdictFromDumpedMetrics) {
  obs::MetricsRegistry registry;
  registry.add("L", "alice", "retransmits_total", 6);
  registry.add("L", "bob", "data_delivered_total", 9);

  TopOptions options;
  options.ledger_tail = 2;
  auto frame = frame_from_replay(
      registry.to_json(), "line1\nline2\nline3\nline4\n", options);
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  EXPECT_EQ(frame->verdict.worst(), obs::HealthState::degraded);
  EXPECT_EQ(frame->verdict.groups.at("L").peers.at("alice").state,
            obs::HealthState::degraded);
  EXPECT_EQ(frame->verdict.groups.at("L").peers.at("bob").state,
            obs::HealthState::healthy);
  // Tail keeps the newest `ledger_tail` lines.
  EXPECT_EQ(frame->ledger_tail,
            (std::vector<std::string>{"line3", "line4"}));
  // The rendered frame parses back out of render_frame without crashing and
  // carries the verdict banner.
  EXPECT_NE(render_frame(*frame, options).find("overall: degraded"),
            std::string::npos);
}

TEST(FrameFromReplay, RejectsMalformedMetricsJson) {
  EXPECT_FALSE(frame_from_replay("this is not json", "").ok());
}

}  // namespace
}  // namespace enclaves::top
