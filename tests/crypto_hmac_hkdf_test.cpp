// HMAC-SHA256 (RFC 4231), HKDF (RFC 5869), PBKDF2 (RFC 7914 §11 vector and
// OpenSSL cross-check), and the password->Pa derivation.
#include <gtest/gtest.h>
#include <openssl/evp.h>

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/password.h"
#include "crypto/pbkdf2.h"
#include "util/hex.h"
#include "util/rng.h"

namespace enclaves::crypto {
namespace {

TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto tag = HmacSha256::mac(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex({tag.data(), tag.size()}),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  auto tag = HmacSha256::mac(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex({tag.data(), tag.size()}),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto tag = HmacSha256::mac(key, data);
  EXPECT_EQ(to_hex({tag.data(), tag.size()}),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  auto tag = HmacSha256::mac(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex({tag.data(), tag.size()}),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  Bytes key = to_bytes("incremental-key");
  Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  HmacSha256 h(key);
  h.update({msg.data(), 10});
  h.update({msg.data() + 10, msg.size() - 10});
  EXPECT_EQ(h.finish(), HmacSha256::mac(key, msg));
}

TEST(HmacSha256, ResetProducesSameTag) {
  HmacSha256 h(to_bytes("k"));
  h.update(to_bytes("first"));
  auto t1 = h.finish();
  h.reset();
  h.update(to_bytes("first"));
  EXPECT_EQ(h.finish(), t1);
}

TEST(HmacSha256, VerifyAcceptsAndRejects) {
  Bytes key = to_bytes("verify-key");
  Bytes msg = to_bytes("message");
  auto tag = HmacSha256::mac(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, {tag.data(), tag.size()}));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, {tag.data(), tag.size()}));
  EXPECT_FALSE(hmac_verify(key, msg, {tag.data(), tag.size() - 1}));
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = must_from_hex("000102030405060708090a0b0c");
  Bytes info = must_from_hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, 0x0b);
  Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, DistinctInfoDistinctKeys) {
  Bytes ikm = to_bytes("shared-secret");
  EXPECT_NE(hkdf({}, ikm, to_bytes("data"), 32),
            hkdf({}, ikm, to_bytes("admin"), 32));
}

TEST(Hkdf, ExpandLargeOutput) {
  Bytes prk = hkdf_extract(to_bytes("s"), to_bytes("ikm"));
  Bytes okm = hkdf_expand(prk, to_bytes("i"), 255 * 32);
  EXPECT_EQ(okm.size(), 255u * 32u);
  // Prefix property: shorter outputs are prefixes of longer ones.
  Bytes small = hkdf_expand(prk, to_bytes("i"), 16);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), okm.begin()));
}

TEST(Pbkdf2, Rfc7914Vector) {
  Bytes dk = pbkdf2_hmac_sha256(to_bytes("passwd"), to_bytes("salt"), 1, 64);
  EXPECT_EQ(to_hex(dk),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc"
            "49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783");
}

class Pbkdf2Cross : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Pbkdf2Cross, MatchesOpenSsl) {
  const std::uint32_t iters = GetParam();
  Bytes password = to_bytes("correct horse battery staple");
  Bytes salt = to_bytes("enclaves-salt");
  Bytes mine = pbkdf2_hmac_sha256(password, salt, iters, 32);
  Bytes ref(32);
  ASSERT_EQ(1, PKCS5_PBKDF2_HMAC(
                   reinterpret_cast<const char*>(password.data()),
                   static_cast<int>(password.size()), salt.data(),
                   static_cast<int>(salt.size()), static_cast<int>(iters),
                   EVP_sha256(), static_cast<int>(ref.size()), ref.data()));
  EXPECT_EQ(mine, ref);
}

INSTANTIATE_TEST_SUITE_P(Iterations, Pbkdf2Cross,
                         ::testing::Values(1u, 2u, 7u, 100u, 1000u));

TEST(Password, DistinctUsersSamePasswordDistinctKeys) {
  PasswordParams p{16, "test"};
  auto a = derive_long_term_key("alice", "hunter2", p);
  auto b = derive_long_term_key("bob", "hunter2", p);
  EXPECT_NE(a.view()[0] == b.view()[0] && equal(a.view(), b.view()), true);
  EXPECT_FALSE(equal(a.view(), b.view()));
}

TEST(Password, Deterministic) {
  PasswordParams p{16, "test"};
  EXPECT_TRUE(equal(derive_long_term_key("alice", "pw", p).view(),
                    derive_long_term_key("alice", "pw", p).view()));
}

TEST(Password, DomainSeparates) {
  PasswordParams p1{16, "deployment-1"};
  PasswordParams p2{16, "deployment-2"};
  EXPECT_FALSE(equal(derive_long_term_key("alice", "pw", p1).view(),
                     derive_long_term_key("alice", "pw", p2).view()));
}

}  // namespace
}  // namespace enclaves::crypto
