// Writer/Reader: round trips, bounds checks, hostile-input rejection.
#include <gtest/gtest.h>

#include "util/hex.h"
#include "util/rng.h"
#include "wire/codec.h"

namespace enclaves::wire {
namespace {

TEST(Codec, IntegersRoundTripBigEndian) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  EXPECT_EQ(to_hex(w.bytes()), "ab1234deadbeef0123456789abcdef");

  Reader r(w.bytes());
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.expect_end().ok());
}

TEST(Codec, VarBytesRoundTrip) {
  Writer w;
  w.var_bytes(to_bytes("hello"));
  w.var_bytes({});
  w.str("world");
  Reader r(w.bytes());
  EXPECT_EQ(*r.var_bytes(), to_bytes("hello"));
  EXPECT_EQ(*r.var_bytes(), Bytes{});
  EXPECT_EQ(*r.str(), "world");
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, RawFixedWidth) {
  Writer w;
  w.raw(to_bytes("abc"));
  Reader r(w.bytes());
  EXPECT_EQ(*r.raw(3), to_bytes("abc"));
  EXPECT_FALSE(r.raw(1).ok());
}

TEST(Codec, TruncatedIntegerRejected) {
  Bytes b = {0x01, 0x02};
  Reader r(b);
  auto v = r.u32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), Errc::truncated);
}

TEST(Codec, LengthPrefixBeyondInputRejected) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.bytes());
  auto v = r.var_bytes();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), Errc::truncated);
}

TEST(Codec, OversizedLengthPrefixRejected) {
  Writer w;
  w.u32(kMaxFieldLen + 1);
  Reader r(w.bytes());
  auto v = r.var_bytes();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), Errc::oversized);
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  ASSERT_TRUE(r.u8().ok());
  auto end = r.expect_end();
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.code(), Errc::malformed);
}

TEST(Codec, EmptyInput) {
  Reader r(BytesView{});
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.u8().ok());
  EXPECT_TRUE(r.expect_end().ok());
}

TEST(Codec, RemainingTracksPosition) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  ASSERT_TRUE(r.u16().ok());
  EXPECT_EQ(r.remaining(), 2u);
}

class CodecFuzzish : public ::testing::TestWithParam<int> {};

// Reading arbitrary byte soup as structured data must never crash and must
// either succeed (consuming bounded input) or produce a clean error.
TEST_P(CodecFuzzish, ArbitraryBytesNeverCrash) {
  enclaves::DeterministicRng rng(static_cast<std::uint64_t>(GetParam()));
  Bytes soup = rng.bytes(rng.below(200));
  Reader r(soup);
  while (!r.at_end()) {
    auto v = r.var_bytes();
    if (!v.ok()) break;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzish, ::testing::Range(0, 20));

}  // namespace
}  // namespace enclaves::wire
