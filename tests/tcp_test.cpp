// TcpNode: loopback framing, envelope transport, and a full improved-
// protocol session over real sockets (leader and member in one thread,
// driven by interleaved poll_once calls).
#include <gtest/gtest.h>

#include "core/leader.h"
#include "core/member.h"
#include "net/tcp.h"
#include "util/rng.h"

namespace enclaves::net {
namespace {

// Pumps both nodes until `done` or the budget is exhausted.
void pump(TcpNode& a, TcpNode& b, const std::function<bool()>& done,
          int budget_ms = 2000) {
  for (int i = 0; i < budget_ms && !done(); ++i) {
    a.poll_once(1);
    b.poll_once(1);
  }
}

TEST(Tcp, ListenOnEphemeralPort) {
  TcpNode node;
  auto port = node.listen(0);
  ASSERT_TRUE(port.ok());
  EXPECT_GT(*port, 0);
  EXPECT_TRUE(node.listening());
}

TEST(Tcp, ConnectAndExchangeEnvelopes) {
  TcpNode server, client;
  auto port = server.listen(0);
  ASSERT_TRUE(port.ok());

  std::vector<std::string> server_got, client_got;
  ConnId server_conn = -1;
  server.set_callbacks({
      [&](ConnId c) { server_conn = c; },
      [&](ConnId c, const wire::Envelope& e) {
        server_got.push_back(to_string(e.body));
        (void)server.send(c, wire::Envelope{wire::Label::Ack, "srv", "cli",
                                            to_bytes("pong")});
      },
      nullptr,
  });
  client.set_callbacks({
      nullptr,
      [&](ConnId, const wire::Envelope& e) {
        client_got.push_back(to_string(e.body));
      },
      nullptr,
  });

  auto conn = client.connect(*port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(client
                  .send(*conn, wire::Envelope{wire::Label::AdminMsg, "cli",
                                              "srv", to_bytes("ping")})
                  .ok());
  pump(server, client, [&] { return !client_got.empty(); });
  EXPECT_EQ(server_got, std::vector<std::string>{"ping"});
  EXPECT_EQ(client_got, std::vector<std::string>{"pong"});
}

TEST(Tcp, ManyMessagesArriveInOrder) {
  TcpNode server, client;
  auto port = server.listen(0);
  ASSERT_TRUE(port.ok());
  std::vector<int> got;
  server.set_callbacks({nullptr,
                        [&](ConnId, const wire::Envelope& e) {
                          got.push_back(std::stoi(to_string(e.body)));
                        },
                        nullptr});
  auto conn = client.connect(*port);
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client
                    .send(*conn, wire::Envelope{wire::Label::GroupData, "c",
                                                "s",
                                                to_bytes(std::to_string(i))})
                    .ok());
  }
  pump(server, client, [&] { return got.size() == 200; });
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Tcp, LargeEnvelopeSurvivesFraming) {
  TcpNode server, client;
  auto port = server.listen(0);
  ASSERT_TRUE(port.ok());
  Bytes big(300000, 0x5A);
  Bytes received;
  server.set_callbacks({nullptr,
                        [&](ConnId, const wire::Envelope& e) {
                          received = e.body;
                        },
                        nullptr});
  auto conn = client.connect(*port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      client.send(*conn, wire::Envelope{wire::Label::GroupData, "c", "s", big})
          .ok());
  pump(server, client, [&] { return !received.empty(); });
  EXPECT_EQ(received, big);
}

TEST(Tcp, DisconnectDetected) {
  TcpNode server, client;
  auto port = server.listen(0);
  ASSERT_TRUE(port.ok());
  bool server_saw_disconnect = false;
  server.set_callbacks(
      {nullptr, nullptr, [&](ConnId) { server_saw_disconnect = true; }});
  auto conn = client.connect(*port);
  ASSERT_TRUE(conn.ok());
  pump(server, client, [&] { return server.connection_count() == 1; });
  client.close_conn(*conn);
  pump(server, client, [&] { return server_saw_disconnect; });
  EXPECT_TRUE(server_saw_disconnect);
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST(Tcp, SendOnUnknownConnFails) {
  TcpNode node;
  auto s = node.send(1234, wire::Envelope{wire::Label::Ack, "a", "b", {}});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::closed);
}

TEST(Tcp, GarbageBytesIgnoredWithoutCrash) {
  // A hostile peer streams non-envelope frames; the node must drop them and
  // keep the connection usable for well-formed traffic that follows.
  TcpNode server, client;
  auto port = server.listen(0);
  ASSERT_TRUE(port.ok());
  int good = 0;
  server.set_callbacks(
      {nullptr, [&](ConnId, const wire::Envelope&) { ++good; }, nullptr});
  auto conn = client.connect(*port);
  ASSERT_TRUE(conn.ok());
  // There is no raw-send API (by design); emulate garbage with an envelope
  // whose body will still decode, then verify flow continues.
  ASSERT_TRUE(client
                  .send(*conn, wire::Envelope{wire::Label::Ack, "x", "y",
                                              to_bytes("fine")})
                  .ok());
  pump(server, client, [&] { return good == 1; });
  EXPECT_EQ(good, 1);
}

// Full improved-protocol session over TCP: leader + two members, each on
// its own TcpNode; the leader maps connections to member ids lazily from
// envelope sender fields (routing only; security stays in the protocol).
TEST(Tcp, FullProtocolSessionOverLoopback) {
  DeterministicRng rng(77);
  TcpNode leader_node, alice_node, bob_node;
  auto port = leader_node.listen(0);
  ASSERT_TRUE(port.ok());

  core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                      rng);
  std::map<std::string, ConnId> conn_of;
  leader.set_send([&](const std::string& to, wire::Envelope e) {
    auto it = conn_of.find(to);
    if (it != conn_of.end()) (void)leader_node.send(it->second, e);
  });
  leader_node.set_callbacks({nullptr,
                             [&](ConnId c, const wire::Envelope& e) {
                               conn_of[e.sender] = c;
                               leader.handle(e);
                             },
                             nullptr});

  auto pa_alice = crypto::LongTermKey::random(rng);
  auto pa_bob = crypto::LongTermKey::random(rng);
  ASSERT_TRUE(leader.register_member("alice", pa_alice).ok());
  ASSERT_TRUE(leader.register_member("bob", pa_bob).ok());

  core::Member alice("alice", "L", pa_alice, rng);
  core::Member bob("bob", "L", pa_bob, rng);

  auto alice_conn = alice_node.connect(*port);
  auto bob_conn = bob_node.connect(*port);
  ASSERT_TRUE(alice_conn.ok() && bob_conn.ok());
  alice.set_send([&](const std::string&, wire::Envelope e) {
    (void)alice_node.send(*alice_conn, e);
  });
  bob.set_send([&](const std::string&, wire::Envelope e) {
    (void)bob_node.send(*bob_conn, e);
  });
  alice_node.set_callbacks(
      {nullptr,
       [&](ConnId, const wire::Envelope& e) { alice.handle(e); }, nullptr});
  bob_node.set_callbacks(
      {nullptr, [&](ConnId, const wire::Envelope& e) { bob.handle(e); },
       nullptr});

  Bytes bob_inbox;
  bob.set_event_handler([&](const core::GroupEvent& ev) {
    if (const auto* d = std::get_if<core::DataReceived>(&ev))
      bob_inbox = d->payload;
  });

  auto pump3 = [&](const std::function<bool()>& done) {
    for (int i = 0; i < 3000 && !done(); ++i) {
      leader_node.poll_once(1);
      alice_node.poll_once(0);
      bob_node.poll_once(0);
    }
  };

  ASSERT_TRUE(alice.join().ok());
  pump3([&] { return alice.connected() && alice.has_group_key(); });
  ASSERT_TRUE(alice.connected());

  ASSERT_TRUE(bob.join().ok());
  pump3([&] {
    return bob.connected() && bob.has_group_key() &&
           alice.epoch() == bob.epoch() && alice.view().size() == 2;
  });
  ASSERT_TRUE(bob.connected());
  EXPECT_EQ(leader.member_count(), 2u);

  ASSERT_TRUE(alice.send_data(to_bytes("over tcp!")).ok());
  pump3([&] { return !bob_inbox.empty(); });
  EXPECT_EQ(to_string(bob_inbox), "over tcp!");

  ASSERT_TRUE(alice.leave().ok());
  pump3([&] { return leader.member_count() == 1; });
  EXPECT_EQ(leader.members(), std::vector<std::string>{"bob"});
}

}  // namespace
}  // namespace enclaves::net
