// Credential registry: CRUD, MAC-sealed serialization, tamper rejection,
// file round trip, leader restore.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/leader.h"
#include "core/member.h"
#include "core/registry.h"
#include "crypto/hmac.h"
#include "crypto/password.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

Credential make_cred(const std::string& id) {
  return Credential{
      id,
      crypto::derive_long_term_key(id, "pw-" + id, {16, "registry-test"}),
      "password"};
}

TEST(Registry, AddFindRemove) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  ASSERT_TRUE(reg.add(make_cred("bob")).ok());
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains("alice"));
  ASSERT_NE(reg.find("alice"), nullptr);
  EXPECT_EQ(reg.find("alice")->note, "password");
  EXPECT_EQ(reg.find("ghost"), nullptr);
  EXPECT_EQ(reg.ids(), (std::vector<std::string>{"alice", "bob"}));

  auto dup = reg.add(make_cred("alice"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), Errc::already_exists);

  ASSERT_TRUE(reg.remove("alice").ok());
  EXPECT_FALSE(reg.contains("alice"));
  EXPECT_EQ(reg.remove("alice").code(), Errc::unknown_peer);
}

TEST(Registry, SerializeRoundTrip) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  ASSERT_TRUE(reg.add(make_cred("bob")).ok());
  Bytes key = to_bytes("storage-key");
  Bytes data = reg.serialize(key);
  auto back = Registry::deserialize(data, key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, reg);
}

TEST(Registry, EmptyRoundTrip) {
  Registry reg;
  Bytes key = to_bytes("k");
  auto back = Registry::deserialize(reg.serialize(key), key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(Registry, TamperingDetected) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  Bytes key = to_bytes("storage-key");
  Bytes data = reg.serialize(key);
  // Flip any byte — header, entry, or MAC — and loading must fail closed.
  for (std::size_t pos : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
    Bytes bad = data;
    bad[pos] ^= 0x01;
    auto r = Registry::deserialize(bad, key);
    ASSERT_FALSE(r.ok()) << "pos=" << pos;
    EXPECT_EQ(r.code(), Errc::auth_failed) << "pos=" << pos;
  }
}

TEST(Registry, WrongStorageKeyRejected) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  Bytes data = reg.serialize(to_bytes("right"));
  auto r = Registry::deserialize(data, to_bytes("wrong"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::auth_failed);
}

TEST(Registry, TruncationRejected) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  Bytes key = to_bytes("k");
  Bytes data = reg.serialize(key);
  EXPECT_FALSE(Registry::deserialize({data.data(), 10}, key).ok());
  EXPECT_FALSE(Registry::deserialize({}, key).ok());
}

// Trailing bytes are rejected by two independent layers: a suffix APPENDED
// to the blob shifts the presumed MAC window and fails authentication, and
// junk smuggled in FRONT of the tag (re-MAC'd — only a key holder, i.e. a
// buggy future serializer, could produce this) dies on the decoder's
// expect_end. Both must hold for Registry and LeaderSnapshot alike.
TEST(Registry, TrailingBytesRejected) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  Bytes key = to_bytes("k");
  Bytes data = reg.serialize(key);

  Bytes appended = data;
  appended.push_back(0x00);
  auto r1 = Registry::deserialize(appended, key);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.code(), Errc::auth_failed);

  Bytes body(data.begin(), data.end() - crypto::HmacSha256::kTagSize);
  body.push_back(0xEE);  // junk inside the authenticated region
  auto tag = crypto::HmacSha256::mac(key, body);
  Bytes remacd = body;
  remacd.insert(remacd.end(), tag.begin(), tag.end());
  auto r2 = Registry::deserialize(remacd, key);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.code(), Errc::malformed);
}

TEST(Registry, SnapshotTrailingBytesRejected) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  LeaderSnapshot snap{reg, 7};
  Bytes key = to_bytes("k");
  Bytes data = snap.serialize(key);

  Bytes appended = data;
  appended.push_back(0x00);
  auto r1 = LeaderSnapshot::deserialize(appended, key);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.code(), Errc::auth_failed);

  Bytes body(data.begin(), data.end() - crypto::HmacSha256::kTagSize);
  body.push_back(0xEE);
  auto tag = crypto::HmacSha256::mac(key, body);
  Bytes remacd = body;
  remacd.insert(remacd.end(), tag.begin(), tag.end());
  auto r2 = LeaderSnapshot::deserialize(remacd, key);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.code(), Errc::malformed);
}

TEST(Registry, FileRoundTrip) {
  Registry reg;
  ASSERT_TRUE(reg.add(make_cred("alice")).ok());
  ASSERT_TRUE(reg.add(make_cred("carol")).ok());
  Bytes key = to_bytes("file-key");
  const std::string path = "/tmp/enclaves_registry_test.bin";
  ASSERT_TRUE(reg.save_file(path, key).ok());
  auto back = Registry::load_file(path, key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, reg);
  std::remove(path.c_str());
}

TEST(Registry, LoadMissingFileFails) {
  auto r = Registry::load_file("/tmp/enclaves_does_not_exist.bin",
                               to_bytes("k"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::io_error);
}

TEST(Registry, InstallRestoresLeaderAfterRestart) {
  Bytes storage_key = to_bytes("ops-key");
  Bytes persisted;
  {
    Registry reg;
    ASSERT_TRUE(reg.add(make_cred("alice")).ok());
    ASSERT_TRUE(reg.add(make_cred("bob")).ok());
    persisted = reg.serialize(storage_key);
  }

  // "Restart": a brand-new leader restores credentials from the blob, and a
  // member authenticates against it with the same password-derived key.
  auto restored = Registry::deserialize(persisted, storage_key);
  ASSERT_TRUE(restored.ok());

  DeterministicRng rng(55);
  net::SimNetwork net;
  Leader leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng);
  leader.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("L", [&leader](const wire::Envelope& e) { leader.handle(e); });
  EXPECT_EQ(restored->install(leader), 2u);
  EXPECT_EQ(restored->install(leader), 0u) << "idempotent";

  Member alice("alice", "L",
               crypto::derive_long_term_key("alice", "pw-alice",
                                            {16, "registry-test"}),
               rng);
  alice.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("alice", [&alice](const wire::Envelope& e) { alice.handle(e); });
  ASSERT_TRUE(alice.join().ok());
  net.run();
  EXPECT_TRUE(alice.connected());
}

}  // namespace
}  // namespace enclaves::core
