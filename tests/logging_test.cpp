// Regression tests for the logging thread-safety contract (util/logging.h):
// set_log_level is atomic, and set_log_sink synchronizes with concurrent
// emission — the old sink is never entered after the swap returns, and a
// sink is never invoked concurrently with itself. Run under TSan these
// tests also catch reintroduced data races on the level or the sink.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace enclaves {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::warn);  // library default
  }
};

TEST_F(LoggingTest, SinkReceivesLevelAndMessage) {
  std::vector<std::pair<LogLevel, std::string>> got;
  set_log_sink([&got](LogLevel level, const std::string& msg) {
    got.emplace_back(level, msg);
  });
  set_log_level(LogLevel::info);
  ENCLAVES_LOG(info) << "hello " << 42;
  ENCLAVES_LOG(debug) << "filtered out";
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, LogLevel::info);
  EXPECT_EQ(got[0].second, "hello 42");
}

TEST_F(LoggingTest, ConcurrentLevelChangesAndEmission) {
  std::atomic<std::uint64_t> delivered{0};
  set_log_sink([&delivered](LogLevel, const std::string&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  set_log_level(LogLevel::trace);

  std::atomic<bool> stop{false};
  std::thread toggler([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      set_log_level(LogLevel::off);
      set_log_level(LogLevel::trace);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 2000; ++i)
        ENCLAVES_LOG(info) << "writer " << t << " msg " << i;
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  // With the level flapping, some messages are filtered — but nothing tears
  // or crashes, and at most one delivery per emission happens.
  EXPECT_LE(delivered.load(), 4u * 2000u);
}

TEST_F(LoggingTest, SinkSwapDuringConcurrentEmission) {
  set_log_level(LogLevel::trace);

  // Each generation's sink counts into its own slot. After a swap returns,
  // the retired generation's count must never move again.
  constexpr int kGenerations = 50;
  std::vector<std::atomic<std::uint64_t>> counts(kGenerations);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed))
        ENCLAVES_LOG(info) << "spin";
    });
  }

  for (int gen = 0; gen < kGenerations; ++gen) {
    auto* slot = &counts[gen];
    set_log_sink([slot](LogLevel, const std::string&) {
      slot->fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::yield();
    set_log_sink(nullptr);  // contract: `slot` is dead after this returns
    std::uint64_t frozen = counts[gen].load();
    std::this_thread::yield();
    EXPECT_EQ(counts[gen].load(), frozen)
        << "old sink entered after set_log_sink returned (gen " << gen << ")";
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

TEST_F(LoggingTest, SinkNeverInvokedConcurrentlyWithItself) {
  set_log_level(LogLevel::trace);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  set_log_sink([&](LogLevel, const std::string&) {
    if (inside.fetch_add(1) != 0) overlapped.store(true);
    std::this_thread::yield();  // widen the window
    inside.fetch_sub(1);
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 500; ++i) ENCLAVES_LOG(warn) << "w";
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_FALSE(overlapped.load());
}

}  // namespace
}  // namespace enclaves
