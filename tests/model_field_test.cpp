// FieldPool: hash-consing, construction, rendering.
#include <gtest/gtest.h>

#include "model/field.h"

namespace enclaves::model {
namespace {

TEST(FieldPool, AtomsAreInterned) {
  FieldPool pool;
  EXPECT_EQ(pool.agent(0), pool.agent(0));
  EXPECT_NE(pool.agent(0), pool.agent(1));
  EXPECT_EQ(pool.nonce(5), pool.nonce(5));
  EXPECT_NE(pool.nonce(5), pool.session_key(5));
  EXPECT_NE(pool.long_term_key(0), pool.session_key(0));
}

TEST(FieldPool, CompositesAreInterned) {
  FieldPool pool;
  FieldId a = pool.agent(0), b = pool.agent(1);
  EXPECT_EQ(pool.pair(a, b), pool.pair(a, b));
  EXPECT_NE(pool.pair(a, b), pool.pair(b, a));
  FieldId k = pool.long_term_key(0);
  EXPECT_EQ(pool.enc(a, k), pool.enc(a, k));
  EXPECT_NE(pool.enc(a, k), pool.enc(b, k));
}

TEST(FieldPool, TupleIsRightNested) {
  FieldPool pool;
  FieldId a = pool.agent(0), b = pool.agent(1), n = pool.nonce(0);
  FieldId t = pool.tuple({a, b, n});
  EXPECT_EQ(t, pool.pair(a, pool.pair(b, n)));
  EXPECT_EQ(pool.tuple({a}), a);
}

TEST(FieldPool, KindPredicates) {
  FieldPool pool;
  FieldId a = pool.agent(0);
  FieldId n = pool.nonce(0);
  FieldId p = pool.long_term_key(0);
  FieldId k = pool.session_key(0);
  FieldId pr = pool.pair(a, n);
  FieldId e = pool.enc(n, k);

  EXPECT_TRUE(pool.is_atom(a) && pool.is_atom(n) && pool.is_atom(p) &&
              pool.is_atom(k));
  EXPECT_FALSE(pool.is_atom(pr) || pool.is_atom(e));
  EXPECT_TRUE(pool.is_key(p) && pool.is_key(k));
  EXPECT_FALSE(pool.is_key(n) || pool.is_key(a));
  EXPECT_TRUE(pool.is_nonce(n));
  EXPECT_TRUE(pool.is_session_key(k));
  EXPECT_FALSE(pool.is_session_key(p));
  EXPECT_TRUE(pool.is_pair(pr));
  EXPECT_TRUE(pool.is_enc(e));
}

TEST(FieldPool, ShowRendersReadably) {
  FieldPool pool;
  std::vector<std::string> names = {"A", "L"};
  FieldId a = pool.agent(0), l = pool.agent(1), n = pool.nonce(3);
  FieldId f = pool.enc(pool.tuple({a, l, n}), pool.long_term_key(0));
  EXPECT_EQ(pool.show(f, names), "{[A, [L, n3]]}P(A)");
  FieldId k = pool.session_key(2);
  EXPECT_EQ(pool.show(k, names), "K2");
}

TEST(FieldPool, SizeGrowsOnlyForNewFields) {
  FieldPool pool;
  std::size_t s0 = pool.size();
  pool.agent(0);
  std::size_t s1 = pool.size();
  pool.agent(0);
  EXPECT_EQ(pool.size(), s1);
  EXPECT_EQ(s1, s0 + 1);
}

}  // namespace
}  // namespace enclaves::model
