// Parts / Analz / Synth / Ideal: the algebraic laws the paper's proofs rest
// on (Millen-Rueß), checked on concrete field structures.
#include <gtest/gtest.h>

#include "model/closure.h"

namespace enclaves::model {
namespace {

struct ClosureFixture : ::testing::Test {
  ClosureFixture() {
    a = pool.agent(0);
    l = pool.agent(1);
    pa = pool.long_term_key(0);
    ka = pool.session_key(0);
    kb = pool.session_key(1);
    n1 = pool.nonce(1);
    n2 = pool.nonce(2);
  }
  FieldPool pool;
  FieldId a, l, pa, ka, kb, n1, n2;
};

TEST_F(ClosureFixture, PartsOpensEverything) {
  // Parts({[A, {N1}_Ka]}) = the field, the pair parts, and N1.
  FieldId inner = pool.enc(n1, ka);
  FieldId msg = pool.pair(a, inner);
  FieldSet s({msg});
  FieldSet p = parts(pool, s);
  EXPECT_TRUE(p.contains(msg));
  EXPECT_TRUE(p.contains(a));
  EXPECT_TRUE(p.contains(inner));
  EXPECT_TRUE(p.contains(n1)) << "Parts opens encryptions unconditionally";
  EXPECT_FALSE(p.contains(ka)) << "the key is not a part of the encryption";
}

TEST_F(ClosureFixture, AnalzRespectsEncryption) {
  FieldId msg = pool.enc(n1, ka);
  FieldSet without_key({msg});
  EXPECT_FALSE(analz(pool, without_key).contains(n1));
  FieldSet with_key({msg, ka});
  EXPECT_TRUE(analz(pool, with_key).contains(n1));
}

TEST_F(ClosureFixture, AnalzUnlocksWhenKeyArrivesViaAnalysis) {
  // The key itself is buried in a pair: analz must find it and then open
  // the encryption seen EARLIER in the iteration.
  FieldId locked = pool.enc(n1, ka);
  FieldId keybox = pool.pair(a, ka);
  FieldSet s({locked, keybox});
  FieldSet out = analz(pool, s);
  EXPECT_TRUE(out.contains(ka));
  EXPECT_TRUE(out.contains(n1));
}

TEST_F(ClosureFixture, AnalzChainsThroughNestedEncryption) {
  // {Ka}_Kb and {N1}_Ka with Kb known: both layers open.
  FieldId wrapped_key = pool.enc(ka, kb);
  FieldId secret = pool.enc(n1, ka);
  FieldSet s({wrapped_key, secret, kb});
  FieldSet out = analz(pool, s);
  EXPECT_TRUE(out.contains(ka));
  EXPECT_TRUE(out.contains(n1));
}

TEST_F(ClosureFixture, AnalzIsIdempotent) {
  FieldId msg = pool.pair(pool.enc(n1, ka), ka);
  FieldSet s({msg});
  FieldSet once = analz(pool, s);
  FieldSet twice = analz(pool, once);
  EXPECT_EQ(once, twice);
}

TEST_F(ClosureFixture, SynthAgentsArePublic) {
  FieldSet empty;
  EXPECT_TRUE(synth_member(pool, a, empty));
  EXPECT_FALSE(synth_member(pool, n1, empty));
  EXPECT_FALSE(synth_member(pool, ka, empty));
}

TEST_F(ClosureFixture, SynthComposesPairsAndEncs) {
  FieldSet s({n1, ka});
  EXPECT_TRUE(synth_member(pool, pool.pair(a, n1), s));
  EXPECT_TRUE(synth_member(pool, pool.enc(pool.pair(a, n1), ka), s));
  EXPECT_FALSE(synth_member(pool, pool.enc(n1, kb), s))
      << "cannot encrypt under an unknown key";
  EXPECT_FALSE(synth_member(pool, pool.pair(n1, n2), s))
      << "cannot conjure an unknown nonce";
}

TEST_F(ClosureFixture, SynthAllowsVerbatimReplay) {
  FieldId sealed = pool.enc(n1, ka);  // key unknown, but field possessed
  FieldSet s({sealed});
  EXPECT_TRUE(synth_member(pool, sealed, s));
  EXPECT_TRUE(synth_member(pool, pool.pair(a, sealed), s))
      << "replayed ciphertext may be embedded in new messages";
}

TEST_F(ClosureFixture, IdealMembership) {
  // S = {Ka, Pa}; per Section 5.2.
  FieldSet s({ka, pa});
  EXPECT_TRUE(ideal_member(pool, ka, s));
  EXPECT_TRUE(ideal_member(pool, pool.pair(a, ka), s))
      << "a pair containing Ka leaks Ka";
  EXPECT_TRUE(ideal_member(pool, pool.enc(ka, kb), s))
      << "{Ka}_Kb is in the ideal: Kb is outside S";
  EXPECT_FALSE(ideal_member(pool, pool.enc(ka, pa), s))
      << "{Ka}_Pa is SAFE: it only opens with a key in S";
  EXPECT_FALSE(ideal_member(pool, pool.enc(n1, ka), s))
      << "{N1}_Ka does not leak Ka";
  EXPECT_FALSE(ideal_member(pool, n1, s));
}

TEST_F(ClosureFixture, IdealPartsLemma) {
  // Ideal-Parts Lemma: Parts(E) ∩ S = ∅ ⇒ E ⊆ C(S).
  FieldSet s({ka, pa});
  std::vector<FieldId> sample = {
      pool.enc(pool.tuple({a, l, n1}), pa),       // AuthInitReq shape
      pool.enc(pool.tuple({a, l, n1, n2}), ka),   // Ack shape
      pool.pair(n1, n2),
  };
  for (FieldId f : sample) {
    FieldSet e({f});
    FieldSet p = parts(pool, e);
    bool intersects = p.contains(ka) || p.contains(pa);
    ASSERT_FALSE(intersects) << pool.show(f);
    EXPECT_TRUE(coideal_member(pool, f, s)) << pool.show(f);
  }
}

TEST_F(ClosureFixture, CoidealClosedUnderAnalz) {
  // Property (3) of Section 5.2, spot-checked: analyzing a set of coideal
  // fields only yields coideal fields.
  FieldSet s({ka, pa});
  FieldSet trace({
      pool.enc(pool.tuple({a, l, n1}), pa),
      pool.enc(pool.tuple({l, a, n1, n2, ka}), pa),  // AuthKeyDist: safe
      pool.pair(a, pool.enc(n2, ka)),
      kb,  // some other (compromised) key
  });
  for (FieldId f : trace) ASSERT_TRUE(coideal_member(pool, f, s));
  FieldSet an = analz(pool, trace);
  for (FieldId f : an)
    EXPECT_TRUE(coideal_member(pool, f, s)) << pool.show(f);
}

TEST(FieldSetOps, InsertAndContains) {
  FieldSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2u);
  // Sorted iteration.
  std::vector<FieldId> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<FieldId>{3, 5}));
}

TEST(FieldSetOps, ConstructorDedupsAndSorts) {
  FieldSet s({9, 1, 9, 4, 1});
  std::vector<FieldId> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<FieldId>{1, 4, 9}));
}

}  // namespace
}  // namespace enclaves::model
