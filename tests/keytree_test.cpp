// KeyTree / KeyTreeView unit mechanics (PROTOCOL.md §13): the LKH key
// schedule, the O(log N) rotation shape, and the member-side apply rules
// (atomic install, stale/forged/unreachable refusal, path recovery) —
// exercised directly on the classes, below the Leader/Member protocol glue.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/keytree.h"
#include "crypto/aead.h"
#include "util/rng.h"
#include "wire/keytree.h"

namespace enclaves::core {
namespace {

TEST(KeyTreeSchedule, LeafKekIsDeterministicAndPairwise) {
  DeterministicRng rng(1);
  auto ka = crypto::SessionKey::random(rng);
  auto kb = crypto::SessionKey::random(rng);
  EXPECT_EQ(derive_leaf_kek(ka, "alice"), derive_leaf_kek(ka, "alice"));
  EXPECT_NE(derive_leaf_kek(ka, "alice"), derive_leaf_kek(ka, "bob"));
  EXPECT_NE(derive_leaf_kek(ka, "alice"), derive_leaf_kek(kb, "alice"));
}

TEST(KeyTreeSchedule, GroupKeyBindsEpochToRoot) {
  DeterministicRng rng(2);
  auto root = crypto::GroupKey::random(rng);
  auto other = crypto::GroupKey::random(rng);
  EXPECT_EQ(derive_group_key(root, 7), derive_group_key(root, 7));
  EXPECT_NE(derive_group_key(root, 7), derive_group_key(root, 8));
  EXPECT_NE(derive_group_key(root, 7), derive_group_key(other, 7));
}

// Leader tree + member views wired together without any network: the
// smallest world in which the broadcast/apply contract can be checked.
struct TreeWorld {
  DeterministicRng rng{42};
  const crypto::Aead& aead = crypto::default_aead();
  KeyTree tree{"L", aead, rng, /*depth=*/3};  // 8 leaves
  std::map<std::string, crypto::SessionKey> ka;
  std::map<std::string, KeyTreeView> view;
  std::map<std::string, std::uint64_t> member_epoch;
  std::uint64_t epoch = 0;

  // Grafts a member and returns the join rotation broadcast.
  wire::KeyTreeUpdatePayload add(const std::string& id) {
    ka.emplace(id, crypto::SessionKey::random(rng));
    const std::uint32_t leaf = tree.assign(id, derive_leaf_kek(ka.at(id), id));
    view[id].assign(leaf, ka.at(id), id);
    return tree.rotate_join(id, ++epoch);
  }

  // Fans a broadcast out to every assigned view; every current member must
  // land on the same Kg as the leader.
  void apply_all(const wire::KeyTreeUpdatePayload& p,
                 const std::set<std::string>& expect_applied) {
    for (auto& [id, v] : view) {
      if (!v.assigned()) continue;
      auto r = v.apply_update(aead, p, member_epoch[id]);
      if (expect_applied.count(id)) {
        ASSERT_EQ(r.outcome, KeyTreeView::Outcome::applied) << id;
        EXPECT_EQ(r.kg, tree.group_key(p.epoch)) << id;
        member_epoch[id] = r.epoch;
      } else {
        EXPECT_NE(r.outcome, KeyTreeView::Outcome::applied) << id;
      }
    }
  }
};

TEST(KeyTree, JoinRotationReachesEveryMember) {
  TreeWorld w;
  std::set<std::string> in;
  for (const std::string id : {"a", "b", "c", "d", "e"}) {
    auto update = w.add(id);
    EXPECT_EQ(update.reason, wire::KeyTreeReason::join);
    in.insert(id);
    w.apply_all(update, in);
  }
  EXPECT_EQ(w.tree.leaf_count(), 5u);
}

TEST(KeyTree, RotationIsLogarithmicNotLinear) {
  // depth-3 tree: a join/leave rotation touches at most `depth` nodes, each
  // shipping at most 2 sealed entries (one per child carrier) plus the
  // joiner's leaf-carried copies — far below one entry per member, which is
  // what the flat path pays.
  TreeWorld w;
  for (const std::string id : {"a", "b", "c", "d", "e", "f", "g", "h"})
    w.add(id);
  auto update = w.tree.rotate_join("h", ++w.epoch);
  EXPECT_LE(update.entries.size(), 2u * w.tree.depth());
  auto manual = w.tree.rotate_root(++w.epoch);
  EXPECT_LE(manual.entries.size(), 2u);  // root: two child carriers
  EXPECT_EQ(manual.reason, wire::KeyTreeReason::manual);
}

TEST(KeyTree, LeaveRotationLocksOutThePrunedLeaf) {
  TreeWorld w;
  std::set<std::string> in;
  for (const std::string id : {"a", "b", "c"}) {
    auto up = w.add(id);
    in.insert(id);
    w.apply_all(up, in);  // earlier members ride the joiner's rotation too
  }
  // Everyone catches up first.
  w.apply_all(w.tree.rotate_root(++w.epoch), in);

  auto update = w.tree.rotate_leave("b", ++w.epoch);
  EXPECT_EQ(update.reason, wire::KeyTreeReason::leave);
  EXPECT_FALSE(w.tree.has_member("b"));
  // b's old path KEKs were all rotated away from it: the update is
  // unreachable from b's view (no entry is carried by a KEK b still holds
  // that leads to the new root).
  in.erase("b");
  w.apply_all(update, in);
  auto r = w.view["b"].apply_update(w.aead, update, w.member_epoch["b"]);
  EXPECT_EQ(r.outcome, KeyTreeView::Outcome::unreachable);
}

TEST(KeyTree, StaleUpdateRefusedWithoutStateChange) {
  TreeWorld w;
  auto first = w.add("a");
  auto& v = w.view["a"];
  ASSERT_EQ(v.apply_update(w.aead, first, 0).outcome,
            KeyTreeView::Outcome::applied);
  // Replay of the exact same epoch: stale, nothing changes.
  auto replay = v.apply_update(w.aead, first, first.epoch);
  EXPECT_EQ(replay.outcome, KeyTreeView::Outcome::stale);
  // A later rotation still applies on top.
  auto next = w.tree.rotate_root(++w.epoch);
  EXPECT_EQ(v.apply_update(w.aead, next, first.epoch).outcome,
            KeyTreeView::Outcome::applied);
}

TEST(KeyTree, SplicedEntryFailsConfirmationAtomically) {
  TreeWorld w;
  w.apply_all(w.add("a"), {"a"});
  w.apply_all(w.add("b"), {"a", "b"});

  auto honest = w.tree.rotate_root(++w.epoch);
  // Mallory (who holds some subtree KEK) replaces one sealed entry with a
  // same-shape blob from a different update: the chain may still decrypt
  // for some members, but the confirmation tag was minted under the honest
  // new Kg, so the spliced set is refused as forged — never half-installed.
  auto spliced = honest;
  ASSERT_FALSE(spliced.entries.empty());
  auto other = w.tree.rotate_root(++w.epoch);
  spliced.entries[0] = other.entries[0];
  spliced.epoch = other.epoch;  // keep freshness plausible

  auto before_epoch = w.member_epoch["a"];
  auto r = w.view["a"].apply_update(w.aead, spliced, before_epoch);
  EXPECT_NE(r.outcome, KeyTreeView::Outcome::applied);
  // The honest successor (at the same target epoch) still applies: the view
  // kept its pre-attack path intact.
  EXPECT_EQ(w.view["a"].apply_update(w.aead, other, before_epoch).outcome,
            KeyTreeView::Outcome::applied);
}

TEST(KeyTree, TamperedConfirmTagIsForged) {
  TreeWorld w;
  w.apply_all(w.add("a"), {"a"});
  auto update = w.tree.rotate_root(++w.epoch);
  update.confirm[0] ^= 0x01;
  EXPECT_EQ(w.view["a"].apply_update(w.aead, update, 1).outcome,
            KeyTreeView::Outcome::forged);
}

TEST(KeyTree, MissedUpdateIsUnreachableAndPathRecoveryHeals) {
  TreeWorld w;
  std::set<std::string> in;
  for (const std::string id : {"a", "b"}) {
    auto up = w.add(id);
    in.insert(id);
    w.apply_all(up, in);
  }
  w.apply_all(w.tree.rotate_root(++w.epoch), in);

  // a misses one rotation that touches its own path (a and b share inner
  // ancestors, so b's join-path rotation re-keys nodes a also holds)...
  auto missed = w.tree.rotate_join("b", ++w.epoch);
  ASSERT_EQ(w.view["b"].apply_update(w.aead, missed, w.member_epoch["b"])
                .outcome,
            KeyTreeView::Outcome::applied);
  // ...so the next one no longer decrypts from a's stale path.
  auto next = w.tree.rotate_root(++w.epoch);
  auto r = w.view["a"].apply_update(w.aead, next, w.member_epoch["a"]);
  EXPECT_EQ(r.outcome, KeyTreeView::Outcome::unreachable);

  // KEY_TREE_RECOVER/KEY_TREE_PATH: the solicited path answer heals a.
  DeterministicRng nrng(7);
  auto nr = crypto::ProtocolNonce::random(nrng);
  auto path = w.tree.path_for("a", w.epoch, nr);
  auto healed = w.view["a"].apply_path(path, w.member_epoch["a"], nr);
  ASSERT_EQ(healed.outcome, KeyTreeView::Outcome::applied);
  EXPECT_EQ(healed.kg, w.tree.group_key(w.epoch));
  // And the broadcast channel works again afterwards.
  w.apply_all(w.tree.rotate_root(++w.epoch), in);
}

TEST(KeyTree, SolicitedPathMayRewindUnsolicitedMayNot) {
  TreeWorld w;
  w.apply_all(w.add("a"), {"a"});
  w.apply_all(w.tree.rotate_root(++w.epoch), {"a"});
  const std::uint64_t honest = w.epoch;

  // The member was desynced forward (it believes epoch 1000). An
  // unsolicited path at the honest epoch must NOT regress it...
  auto unsolicited = w.tree.path_for("a", honest, crypto::ProtocolNonce{});
  EXPECT_EQ(w.view["a"].apply_path(unsolicited, 1000, std::nullopt).outcome,
            KeyTreeView::Outcome::stale);
  // ...but the solicited answer (nonce echoed) is authoritative at any
  // epoch: it is the rollback that heals a forged-forward-epoch desync.
  DeterministicRng nrng(9);
  auto nr = crypto::ProtocolNonce::random(nrng);
  auto solicited = w.tree.path_for("a", honest, nr);
  auto r = w.view["a"].apply_path(solicited, 1000, nr);
  ASSERT_EQ(r.outcome, KeyTreeView::Outcome::applied);
  EXPECT_EQ(r.epoch, honest);
}

TEST(KeyTree, TamperedPathIsForged) {
  TreeWorld w;
  w.apply_all(w.add("a"), {"a"});
  DeterministicRng nrng(11);
  auto nr = crypto::ProtocolNonce::random(nrng);
  auto path = w.tree.path_for("a", w.epoch, nr);
  ASSERT_FALSE(path.path.empty());
  DeterministicRng krng(12);
  path.path[0].kek = crypto::GroupKey::random(krng);
  EXPECT_EQ(w.view["a"].apply_path(path, 0, nr).outcome,
            KeyTreeView::Outcome::forged);
}

TEST(KeyTree, GrowRebuildPreservesMembership) {
  DeterministicRng rng(5);
  const crypto::Aead& aead = crypto::default_aead();
  KeyTree tree("L", aead, rng, /*depth=*/1);  // 2 leaves
  std::map<std::string, crypto::SessionKey> ka;
  std::map<std::string, KeyTreeView> view;
  std::uint64_t epoch = 0;
  for (const std::string id : {"a", "b"}) {
    ka.emplace(id, crypto::SessionKey::random(rng));
    const auto leaf = tree.assign(id, derive_leaf_kek(ka.at(id), id));
    view[id].assign(leaf, ka.at(id), id);
    auto up = tree.rotate_join(id, ++epoch);
    for (auto& [vid, v] : view)
      if (v.assigned()) v.apply_update(aead, up, epoch - 1);
  }
  ASSERT_TRUE(tree.full());

  tree.grow();
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_FALSE(tree.full());
  // Leaf KEKs survive growth; indices are re-dealt, so views re-assign
  // (the Leader ships this as a KeyTreeAssign admin message).
  for (const std::string id : {"a", "b"})
    view[id].assign(tree.leaf_of(id), ka.at(id), id);
  auto rebuild = tree.rebuild(++epoch);
  EXPECT_EQ(rebuild.reason, wire::KeyTreeReason::rebuild);
  for (const std::string id : {"a", "b"}) {
    auto r = view[id].apply_update(aead, rebuild, epoch - 1);
    ASSERT_EQ(r.outcome, KeyTreeView::Outcome::applied) << id;
    EXPECT_EQ(r.kg, tree.group_key(epoch));
  }
  // Room for a third member now.
  ka.emplace("c", crypto::SessionKey::random(rng));
  const auto leaf = tree.assign("c", derive_leaf_kek(ka.at("c"), "c"));
  view["c"].assign(leaf, ka.at("c"), "c");
  auto up = tree.rotate_join("c", ++epoch);
  for (const std::string id : {"a", "b", "c"})
    EXPECT_EQ(view[id].apply_update(aead, up, epoch - 1).outcome,
              KeyTreeView::Outcome::applied)
        << id;
}

TEST(KeyTree, SnapshotSlotsRestoreAsHints) {
  DeterministicRng rng(6);
  const crypto::Aead& aead = crypto::default_aead();
  KeyTree tree("L", aead, rng, /*depth=*/3);
  std::map<std::string, crypto::SessionKey> ka;
  for (const std::string id : {"a", "b", "c"}) {
    ka.emplace(id, crypto::SessionKey::random(rng));
    tree.assign(id, derive_leaf_kek(ka.at(id), id));
  }
  const auto slots = tree.slots();

  // A restarted leader re-assigns with the persisted slots as hints: every
  // member gets its old subtree back, so rejoin churn stays local.
  KeyTree restored("L", aead, rng, /*depth=*/3);
  for (const auto& [id, leaf] : slots)
    EXPECT_EQ(restored.assign(id, derive_leaf_kek(ka.at(id), id), leaf), leaf)
        << id;
}

}  // namespace
}  // namespace enclaves::core
