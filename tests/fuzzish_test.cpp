// Decoder robustness sweep: every decoder in the system is fed random byte
// soup, truncated real messages, and bit-flipped real messages. None may
// crash; every failure must be a clean Result error. This is the
// deterministic stand-in for a fuzzing campaign.
#include <gtest/gtest.h>

#include "app/group_chat.h"
#include "core/registry.h"
#include "util/rng.h"
#include "wire/admin_body.h"
#include "wire/envelope.h"
#include "wire/legacy_payloads.h"
#include "wire/payloads.h"

namespace enclaves {
namespace {

// Runs every decoder on the given bytes; result values are irrelevant, the
// point is no crash/UB and clean error paths.
void sweep_all_decoders(BytesView soup) {
  (void)wire::decode_envelope(soup);
  (void)wire::decode_admin_body(soup);
  (void)wire::decode_auth_init(soup);
  (void)wire::decode_auth_key_dist(soup);
  (void)wire::decode_auth_ack(soup);
  (void)wire::decode_admin(soup);
  (void)wire::decode_ack(soup);
  (void)wire::decode_req_close(soup);
  (void)wire::decode_group_data(soup);
  (void)wire::decode_legacy_auth_init(soup);
  (void)wire::decode_legacy_auth_reply(soup);
  (void)wire::decode_legacy_auth_ack(soup);
  (void)wire::decode_legacy_new_key(soup);
  (void)wire::decode_legacy_new_key_ack(soup);
  (void)wire::decode_legacy_membership(soup);
  (void)app::decode_chat_message(soup);
  (void)core::Registry::deserialize(soup, to_bytes("k"));
}

class FuzzishSoup : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzishSoup, RandomBytesNeverCrashAnyDecoder) {
  DeterministicRng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes soup = rng.bytes(rng.below(300));
    sweep_all_decoders(soup);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzishSoup, ::testing::Range<std::uint64_t>(1, 9));

TEST(FuzzishStructured, MutatedRealMessagesNeverCrash) {
  DeterministicRng rng(99);
  // Build one real instance of each message type, then mutate heavily.
  std::vector<Bytes> corpus;
  auto n = [&] { return crypto::ProtocolNonce::random(rng); };
  corpus.push_back(wire::encode(wire::Envelope{wire::Label::AdminMsg, "L",
                                               "alice", rng.bytes(64)}));
  corpus.push_back(wire::encode(wire::AuthInitPayload{"alice", "L", n()}));
  corpus.push_back(wire::encode(wire::AuthKeyDistPayload{
      "L", "alice", n(), n(), crypto::SessionKey::random(rng)}));
  corpus.push_back(wire::encode(
      wire::AdminPayload{"L", "alice", n(), n(),
                         wire::AdminBody(wire::MemberList{{"a", "b"}})}));
  corpus.push_back(wire::encode(wire::LegacyAuthReplyPayload{
      "L", "alice", n(), n(), crypto::SessionKey::random(rng),
      rng.bytes(16), crypto::GroupKey::random(rng), 3}));
  corpus.push_back(
      app::encode(app::ChatMessage{app::ChatKind::text, "a", "hi", 1}));
  {
    core::Registry reg;
    (void)reg.add(core::Credential{"alice",
                                   crypto::LongTermKey::random(rng), "t"});
    corpus.push_back(reg.serialize(to_bytes("k")));
  }

  for (const Bytes& base : corpus) {
    // Every truncation.
    for (std::size_t len = 0; len <= base.size(); ++len)
      sweep_all_decoders({base.data(), len});
    // Many random single- and multi-byte corruptions.
    for (int round = 0; round < 100; ++round) {
      Bytes bad = base;
      std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips && !bad.empty(); ++f)
        bad[rng.below(bad.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      sweep_all_decoders(bad);
    }
  }
  SUCCEED();
}

TEST(FuzzishStructured, HugeLengthClaimsBounded) {
  // Length prefixes claiming enormous sizes must fail fast without large
  // allocations (kMaxFieldLen guard).
  Bytes evil;
  evil.push_back(0x04);  // label AdminMsg
  for (int i = 0; i < 4; ++i) evil.push_back(0xFF);  // sender len = 4 GiB
  auto r = wire::decode_envelope(evil);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::oversized);
}

}  // namespace
}  // namespace enclaves
