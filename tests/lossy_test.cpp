// Lossy-transport convergence: with a tap dropping packets, the
// byte-identical retransmission layer (Leader::tick / Member::tick +
// idempotent duplicate answers in both FSMs) must still bring every member
// into a consistent session — without weakening any security property
// (duplicates answer from caches; nothing new ever hits the wire).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/leader.h"
#include "core/member.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

struct LossyWorld {
  // Percent bands of one per-packet roll: drop, then duplicate, then delay
  // (1..4 steps — reordering), else deliver. The historical drop-only
  // constructor shape is the dup=delay=0 case and consumes the identical
  // random stream, so the original scenarios replay unchanged.
  LossyWorld(std::uint64_t seed, std::uint32_t drop_percent,
             std::uint32_t dup_percent = 0, std::uint32_t delay_percent = 0)
      : rng(seed),
        drop_rng(seed ^ 0xD20),
        leader(LeaderConfig{"L", RekeyPolicy::strict()}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
    net.set_tap([this, drop_percent, dup_percent,
                 delay_percent](const net::Packet&) {
      const auto roll = drop_rng.below(100);
      if (roll < drop_percent) return net::TapDecision{net::TapVerdict::drop};
      if (roll < drop_percent + dup_percent)
        return net::TapDecision{net::TapVerdict::duplicate};
      if (roll < drop_percent + dup_percent + delay_percent)
        return net::TapDecision{
            net::TapVerdict::delay,
            1 + static_cast<std::uint32_t>(drop_rng.below(4))};
      return net::TapDecision{net::TapVerdict::deliver};
    });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  // One "time step": drain the network, then fire all retransmit timers.
  void step() {
    net.run();
    leader.tick();
    for (auto& [id, m] : members) m->tick();
    net.run();
  }

  bool converged() const {
    for (const auto& [id, m] : members) {
      if (leader.is_member(id)) {
        // The leader must have nothing in flight or queued for this member,
        // and the member must hold the current epoch.
        const LeaderSession* s = leader.session(id);
        if (!s || s->state() != LeaderSession::State::connected ||
            s->queue_depth() != 0)
          return false;
        if (!m->connected() || m->epoch() != leader.epoch()) return false;
      }
    }
    return true;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  DeterministicRng drop_rng;
  Leader leader;
  std::map<std::string, std::unique_ptr<Member>> members;
};

class LossyJoin
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(LossyJoin, AllMembersEventuallyJoinAndAgree) {
  auto [seed, drop_percent] = GetParam();
  LossyWorld w(seed, static_cast<std::uint32_t>(drop_percent));
  const int kMembers = 4;
  for (int i = 0; i < kMembers; ++i) {
    auto& m = w.add("m" + std::to_string(i));
    ASSERT_TRUE(m.join().ok());
    // Drive ticks until this member is fully in (sequential joins keep the
    // scenario deterministic and bound the retransmission interleavings).
    for (int t = 0; t < 400 && !(m.connected() && m.has_group_key() &&
                                 m.epoch() == w.leader.epoch());
         ++t) {
      w.step();
    }
    ASSERT_TRUE(m.connected()) << "drop=" << drop_percent << " seed=" << seed;
  }
  for (int t = 0; t < 400 && !w.converged(); ++t) w.step();
  EXPECT_TRUE(w.converged());
  EXPECT_EQ(w.leader.member_count(), static_cast<std::size_t>(kMembers));

  // Every view must equal the leader's membership after quiescence.
  auto expect = w.leader.members();
  for (const auto& [id, m] : w.members) EXPECT_EQ(m->view(), expect) << id;
}

INSTANTIATE_TEST_SUITE_P(
    DropRates, LossyJoin,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(10, 30, 50)));

// Same convergence property with the full fault mix: drops AND duplicates
// AND delays (= reordering) on every link at once.
class MixedFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedFaults, GroupConvergesUnderDropDuplicateAndDelay) {
  LossyWorld w(GetParam(), /*drop=*/20, /*dup=*/15, /*delay=*/15);
  const int kMembers = 4;
  for (int i = 0; i < kMembers; ++i) {
    auto& m = w.add("m" + std::to_string(i));
    ASSERT_TRUE(m.join().ok());
    for (int t = 0; t < 400 && !(m.connected() && m.has_group_key() &&
                                 m.epoch() == w.leader.epoch());
         ++t) {
      w.step();
    }
    ASSERT_TRUE(m.connected()) << "seed=" << GetParam();
  }
  for (int i = 0; i < 4; ++i)
    w.leader.broadcast_notice("mix" + std::to_string(i));
  for (int t = 0; t < 400 && !w.converged(); ++t) w.step();
  EXPECT_TRUE(w.converged());
  EXPECT_EQ(w.leader.member_count(), static_cast<std::size_t>(kMembers));

  auto expect = w.leader.members();
  for (const auto& [id, m] : w.members) {
    EXPECT_EQ(m->view(), expect) << id;
    // Duplication and reordering on the wire never reach the admin channel:
    // each notice exactly once, in broadcast order.
    std::vector<std::string> notices;
    for (const auto& body : m->rcv_log()) {
      if (const auto* n = std::get_if<wire::Notice>(&body)) {
        if (n->text.rfind("mix", 0) == 0) notices.push_back(n->text);
      }
    }
    EXPECT_EQ(notices, (std::vector<std::string>{"mix0", "mix1", "mix2",
                                                 "mix3"}))
        << id;
  }
  EXPECT_GT(w.net.packets_duplicated_by_tap(), 0u);
  EXPECT_GT(w.net.packets_delayed_by_tap(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFaults,
                         ::testing::Values<std::uint64_t>(21, 22, 23, 24));

TEST(Lossy, AdminFanoutSurvivesDrops) {
  LossyWorld w(99, 0);  // start reliable for the joins
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected() && bob.connected());

  // Now 40% loss while the leader pushes notices and rekeys.
  DeterministicRng drop_rng(4242);
  w.net.set_tap([&drop_rng](const net::Packet&) {
    return drop_rng.below(100) < 40 ? net::TapVerdict::drop
                                    : net::TapVerdict::deliver;
  });
  for (int i = 0; i < 5; ++i) w.leader.broadcast_notice("n" + std::to_string(i));
  w.leader.rekey();
  for (int t = 0; t < 600 && !w.converged(); ++t) w.step();
  EXPECT_TRUE(w.converged());
  EXPECT_EQ(alice.epoch(), w.leader.epoch());
  EXPECT_EQ(bob.epoch(), w.leader.epoch());

  // No duplicates despite all the retransmission: each notice at most once.
  std::map<std::string, int> seen;
  for (const auto& body : alice.rcv_log()) {
    if (const auto* n = std::get_if<wire::Notice>(&body)) ++seen[n->text];
  }
  for (const auto& [text, count] : seen) EXPECT_EQ(count, 1) << text;
}

TEST(Lossy, LostCloseEventuallyProcessed) {
  LossyWorld w(7, 0);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.join().ok());
  w.net.run();

  // Drop EVERYTHING once: the first ReqClose dies on the wire.
  bool dropped_one = false;
  w.net.set_tap([&dropped_one](const net::Packet& p) {
    if (!dropped_one && p.envelope.label == wire::Label::ReqClose) {
      dropped_one = true;
      return net::TapVerdict::drop;
    }
    return net::TapVerdict::deliver;
  });
  ASSERT_TRUE(alice.leave().ok());
  w.net.run();
  EXPECT_TRUE(w.leader.is_member("alice")) << "close was dropped";

  // Ticks re-send the close; the leader processes it and informs bob.
  for (int t = 0; t < 10 && w.leader.is_member("alice"); ++t) w.step();
  EXPECT_FALSE(w.leader.is_member("alice"));
  EXPECT_EQ(bob.view(), std::vector<std::string>{"bob"});
}

TEST(Lossy, RetransmitsAreByteIdentical) {
  // The security argument for the liveness layer: retransmissions add no
  // new ciphertext. Drop the first AuthKeyDist, capture both transmissions,
  // and compare.
  LossyWorld w(11, 0);
  auto& alice = w.add("alice");
  int keydist_seen = 0;
  std::vector<Bytes> bodies;
  w.net.set_tap([&](const net::Packet& p) {
    if (p.envelope.label == wire::Label::AuthKeyDist) {
      bodies.push_back(p.envelope.body);
      if (++keydist_seen == 1) return net::TapVerdict::drop;
    }
    return net::TapVerdict::deliver;
  });
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  EXPECT_FALSE(alice.connected());
  for (int t = 0; t < 10 && !alice.connected(); ++t) w.step();
  ASSERT_TRUE(alice.connected());
  ASSERT_GE(bodies.size(), 2u);
  EXPECT_EQ(bodies[0], bodies[1]) << "retransmit must be byte-identical";
}

TEST(Lossy, TickIsQuietWhenNothingPending) {
  LossyWorld w(13, 0);
  auto& alice = w.add("alice");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());
  EXPECT_EQ(w.leader.tick(), 0u);
  EXPECT_EQ(alice.tick(), 0u);
}

}  // namespace
}  // namespace enclaves::core
