// X25519 public-key authentication (the paper's footnoted extension):
// RFC 7748 vectors, key agreement, Pa derivation, and a full protocol run
// authenticated by key pairs instead of passwords.
#include <gtest/gtest.h>

#include "core/leader.h"
#include "core/member.h"
#include "crypto/x25519.h"
#include "net/sim_network.h"
#include "util/hex.h"
#include "util/rng.h"

namespace enclaves::crypto {
namespace {

TEST(X25519, Rfc7748StaticVector) {
  // RFC 7748 §6.1 Diffie-Hellman test vector.
  Bytes alice_priv = must_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  Bytes bob_priv = must_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  Bytes alice_pub_expect = must_from_hex(
      "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  Bytes bob_pub_expect = must_from_hex(
      "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  Bytes shared_expect = must_from_hex(
      "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");

  auto alice = X25519KeyPair::from_private(alice_priv);
  auto bob = X25519KeyPair::from_private(bob_priv);
  ASSERT_TRUE(alice.ok() && bob.ok());
  EXPECT_EQ(alice->public_key, alice_pub_expect);
  EXPECT_EQ(bob->public_key, bob_pub_expect);

  auto s1 = x25519_shared_secret(alice_priv, bob->public_key);
  auto s2 = x25519_shared_secret(bob_priv, alice->public_key);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, shared_expect);
  EXPECT_EQ(*s2, shared_expect);
}

TEST(X25519, GenerateProducesWorkingPairs) {
  auto a = X25519KeyPair::generate();
  auto b = X25519KeyPair::generate();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->public_key, b->public_key);
  auto s1 = x25519_shared_secret(a->private_key, b->public_key);
  auto s2 = x25519_shared_secret(b->private_key, a->public_key);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(X25519, RejectsBadInputs) {
  auto a = X25519KeyPair::generate();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(x25519_shared_secret(Bytes(31, 1), a->public_key).ok());
  EXPECT_FALSE(x25519_shared_secret(a->private_key, Bytes(5, 1)).ok());
  // All-zero peer public key is a low-order point: must be refused.
  auto r = x25519_shared_secret(a->private_key, Bytes(32, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::bad_key);
}

TEST(X25519, PaDerivationAgreesAcrossRoles) {
  auto member = X25519KeyPair::generate();
  auto leader = X25519KeyPair::generate();
  ASSERT_TRUE(member.ok() && leader.ok());

  auto pa_member = derive_long_term_key_x25519(
      member->private_key, leader->public_key, "alice", "L");
  auto pa_leader = derive_long_term_key_x25519(
      leader->private_key, member->public_key, "alice", "L");
  ASSERT_TRUE(pa_member.ok() && pa_leader.ok());
  EXPECT_EQ(*pa_member, *pa_leader);
}

TEST(X25519, PaBindsIdentities) {
  auto member = X25519KeyPair::generate();
  auto leader = X25519KeyPair::generate();
  ASSERT_TRUE(member.ok() && leader.ok());
  auto pa1 = derive_long_term_key_x25519(member->private_key,
                                         leader->public_key, "alice", "L");
  auto pa2 = derive_long_term_key_x25519(member->private_key,
                                         leader->public_key, "alice", "L2");
  auto pa3 = derive_long_term_key_x25519(member->private_key,
                                         leader->public_key, "bob", "L");
  ASSERT_TRUE(pa1.ok() && pa2.ok() && pa3.ok());
  EXPECT_NE(*pa1, *pa2);
  EXPECT_NE(*pa1, *pa3);
}

// The whole improved protocol running on public-key-derived credentials —
// nothing else changes, which is exactly the point of the extension.
TEST(X25519, FullProtocolWithPkAuthentication) {
  DeterministicRng rng(123);
  net::SimNetwork net;
  core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                      rng);
  leader.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("L", [&leader](const wire::Envelope& e) { leader.handle(e); });

  auto leader_keys = X25519KeyPair::generate();
  auto alice_keys = X25519KeyPair::generate();
  ASSERT_TRUE(leader_keys.ok() && alice_keys.ok());

  // Leader registers alice from HER PUBLIC KEY only (no shared password).
  auto pa_for_leader = derive_long_term_key_x25519(
      leader_keys->private_key, alice_keys->public_key, "alice", "L");
  ASSERT_TRUE(pa_for_leader.ok());
  ASSERT_TRUE(leader.register_member("alice", *pa_for_leader).ok());

  // Alice derives the same Pa from the LEADER'S public key.
  auto pa_for_alice = derive_long_term_key_x25519(
      alice_keys->private_key, leader_keys->public_key, "alice", "L");
  ASSERT_TRUE(pa_for_alice.ok());

  core::Member alice("alice", "L", *pa_for_alice, rng);
  alice.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  net.attach("alice", [&alice](const wire::Envelope& e) { alice.handle(e); });

  ASSERT_TRUE(alice.join().ok());
  net.run();
  EXPECT_TRUE(alice.connected());
  EXPECT_TRUE(leader.is_member("alice"));

  // And an imposter with a DIFFERENT key pair claiming to be alice fails.
  auto mallory_keys = X25519KeyPair::generate();
  auto wrong_pa = derive_long_term_key_x25519(
      mallory_keys->private_key, leader_keys->public_key, "alice", "L");
  ASSERT_TRUE(wrong_pa.ok());
  core::Member imposter("alice", "L", *wrong_pa, rng);
  imposter.set_send([&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  });
  // (alice already left the handler slot? No — keep alice attached; the
  // imposter races on the same identity from elsewhere.)
  ASSERT_TRUE(imposter.join().ok());
  net.run();
  EXPECT_FALSE(imposter.connected());
}

}  // namespace
}  // namespace enclaves::crypto
