// Golden-trace conformance: the protocol's observable event sequence for the
// canonical happy paths is committed here as text and diffed verbatim.
//
// The DSN'01 exchanges under test: the 3-message authentication handshake
// (AuthInitReq -> AuthKeyDist -> AuthAckKey), the stop-and-wait AdminMsg/Ack
// channel that distributes Kg and the membership view, and the graceful
// ReqClose departure. Any reordering, duplication, or loss of a protocol
// event — even one that keeps the end state correct — shows up as a text
// diff against the golden chart.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/leader.h"
#include "core/member.h"
#include "net/sim_network.h"
#include "net/trace_chart.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

struct TracedWorld {
  explicit TracedWorld(std::uint64_t seed,
                       RekeyPolicy policy = RekeyPolicy::strict())
      : rng(seed), leader(LeaderConfig{"L", policy}, rng), sink(trace) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  std::string chart() const {
    return net::format_event_chart(trace.events());
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
  obs::TraceLog trace;
  obs::ScopedTraceSink sink;
  std::map<std::string, std::unique_ptr<Member>> members;
};

// format_event_chart pads fixed-width columns, which leaves trailing blanks
// on lines that end in a padded field; normalize those away so the golden
// text below stays editor-safe while the comparison stays line-exact.
std::string strip_trailing_blanks(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    auto end = line.find_last_not_of(' ');
    out.append(line, 0, end == std::string::npos ? 0 : end + 1);
    out += '\n';
  }
  return out;
}

// One member joins (3-message auth), receives Kg and the membership view
// over the stop-and-wait admin channel, answers a Notice probe, and leaves
// gracefully. Every protocol event, in order. All ticks are 0: no timer
// fires in a lossless happy path.
TEST(GoldenTrace, JoinNoticeLeaveHappyPath) {
  TracedWorld w(42);
  auto& alice = w.add("alice");

  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());

  w.leader.probe_liveness();  // Notice("hb") over the admin channel
  w.net.run();

  ASSERT_TRUE(alice.leave().ok());
  w.net.run();
  ASSERT_FALSE(alice.connected());

  const std::string golden =
      "@0    alice      member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@0    L          leader_phase    -> alice      [NotConnected->WaitingForKeyAck]\n"
      "@0    alice      member_phase    -> L          [WaitingForKey->Connected]\n"
      "@0    L          leader_phase    -> alice      [WaitingForKeyAck->Connected]\n"
      "@0    L          join            -> alice\n"
      "@0    L          rekey           =1\n"
      "@0    L          admin_send      -> alice      [new_group_key]\n"
      "@0    alice      rekey           -> L          =1\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [member_list]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [notice]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    alice      leave           -> L          [left]\n"
      "@0    L          leader_phase    -> alice      [Connected->NotConnected]\n"
      "@0    L          leave           -> alice      [req_close]\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

// Second member joining an established group: the incumbent hears about the
// newcomer via MemberJoined, and the strict policy rekeys the whole group.
TEST(GoldenTrace, SecondJoinFansOutToIncumbent) {
  TracedWorld w(43);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  w.trace.clear();  // golden-diff only the second join

  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.connected());

  const std::string golden =
      "@0    bob        member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@0    L          leader_phase    -> bob        [NotConnected->WaitingForKeyAck]\n"
      "@0    bob        member_phase    -> L          [WaitingForKey->Connected]\n"
      "@0    L          leader_phase    -> bob        [WaitingForKeyAck->Connected]\n"
      "@0    L          join            -> bob\n"
      "@0    L          rekey           =2\n"
      "@0    L          admin_send      -> alice      [new_group_key]\n"
      "@0    L          admin_send      -> bob        [new_group_key]\n"
      "@0    alice      rekey           -> L          =2\n"
      "@0    bob        rekey           -> L          =2\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [member_joined]\n"
      "@0    L          admin_ack       -> bob\n"
      "@0    L          admin_send      -> bob        [member_list]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_ack       -> bob\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

// Determinism: the same scenario under the same seed yields a byte-identical
// chart — the property that makes golden-trace diffs trustworthy in CI.
TEST(GoldenTrace, ChartIsDeterministicAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    TracedWorld w(7);
    auto& alice = w.add("alice");
    ASSERT_TRUE(alice.join().ok());
    w.net.run();
    w.leader.probe_liveness();
    w.net.run();
    if (run == 0) {
      first = w.chart();
    } else {
      EXPECT_EQ(w.chart(), first);
    }
  }
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace enclaves::core
