// Golden-trace conformance: the protocol's observable event sequence for the
// canonical happy paths is committed here as text and diffed verbatim.
//
// The DSN'01 exchanges under test: the 3-message authentication handshake
// (AuthInitReq -> AuthKeyDist -> AuthAckKey), the stop-and-wait AdminMsg/Ack
// channel that distributes Kg and the membership view, and the graceful
// ReqClose departure. Any reordering, duplication, or loss of a protocol
// event — even one that keeps the end state correct — shows up as a text
// diff against the golden chart.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "ha/failover.h"
#include "ha/replicator.h"
#include "ha/standby.h"
#include "net/sim_network.h"
#include "net/trace_chart.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace enclaves::core {
namespace {

struct TracedWorld {
  explicit TracedWorld(std::uint64_t seed,
                       RekeyPolicy policy = RekeyPolicy::strict())
      : rng(seed), leader(LeaderConfig{"L", policy}, rng), sink(trace) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader.register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  std::string chart() const {
    return net::format_event_chart(trace.events());
  }

  net::SimNetwork net;
  DeterministicRng rng;
  Leader leader;
  obs::TraceLog trace;
  obs::ScopedTraceSink sink;
  std::map<std::string, std::unique_ptr<Member>> members;
};

// format_event_chart pads fixed-width columns, which leaves trailing blanks
// on lines that end in a padded field; normalize those away so the golden
// text below stays editor-safe while the comparison stays line-exact.
std::string strip_trailing_blanks(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    auto end = line.find_last_not_of(' ');
    out.append(line, 0, end == std::string::npos ? 0 : end + 1);
    out += '\n';
  }
  return out;
}

// One member joins (3-message auth), receives Kg and the membership view
// over the stop-and-wait admin channel, answers a Notice probe, and leaves
// gracefully. Every protocol event, in order. All ticks are 0: no timer
// fires in a lossless happy path.
TEST(GoldenTrace, JoinNoticeLeaveHappyPath) {
  TracedWorld w(42);
  auto& alice = w.add("alice");

  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  ASSERT_TRUE(alice.connected());

  w.leader.probe_liveness();  // Notice("hb") over the admin channel
  w.net.run();

  ASSERT_TRUE(alice.leave().ok());
  w.net.run();
  ASSERT_FALSE(alice.connected());

  const std::string golden =
      "@0    alice      member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@0    L          leader_phase    -> alice      [NotConnected->WaitingForKeyAck]\n"
      "@0    alice      member_phase    -> L          [WaitingForKey->Connected]\n"
      "@0    L          leader_phase    -> alice      [WaitingForKeyAck->Connected]\n"
      "@0    L          join            -> alice\n"
      "@0    L          rekey           =1\n"
      "@0    L          admin_send      -> alice      [new_group_key]\n"
      "@0    alice      rekey           -> L          =1\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [member_list]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [notice]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    alice      leave           -> L          [left]\n"
      "@0    L          leader_phase    -> alice      [Connected->NotConnected]\n"
      "@0    L          leave           -> alice      [req_close]\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

// Second member joining an established group: the incumbent hears about the
// newcomer via MemberJoined, and the strict policy rekeys the whole group.
TEST(GoldenTrace, SecondJoinFansOutToIncumbent) {
  TracedWorld w(43);
  auto& alice = w.add("alice");
  auto& bob = w.add("bob");
  ASSERT_TRUE(alice.join().ok());
  w.net.run();
  w.trace.clear();  // golden-diff only the second join

  ASSERT_TRUE(bob.join().ok());
  w.net.run();
  ASSERT_TRUE(bob.connected());

  const std::string golden =
      "@0    bob        member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@0    L          leader_phase    -> bob        [NotConnected->WaitingForKeyAck]\n"
      "@0    bob        member_phase    -> L          [WaitingForKey->Connected]\n"
      "@0    L          leader_phase    -> bob        [WaitingForKeyAck->Connected]\n"
      "@0    L          join            -> bob\n"
      "@0    L          rekey           =2\n"
      "@0    L          admin_send      -> alice      [new_group_key]\n"
      "@0    L          admin_send      -> bob        [new_group_key]\n"
      "@0    alice      rekey           -> L          =2\n"
      "@0    bob        rekey           -> L          =2\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_send      -> alice      [member_joined]\n"
      "@0    L          admin_ack       -> bob\n"
      "@0    L          admin_send      -> bob        [member_list]\n"
      "@0    L          admin_ack       -> alice\n"
      "@0    L          admin_ack       -> bob\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

// The canonical failover sequence (PROTOCOL.md §11): the active leader
// crashes, the failover controller suspects the replication silence and
// promotes the warm standby, the member suspects its dead leader, cycles to
// the standby and re-authenticates above the epoch fence. Every observable
// event of crash -> suspicion -> promotion -> rejoin, in order, with ticks.
TEST(GoldenTrace, FailoverCrashSuspicionPromotionRejoin) {
  net::SimNetwork net;
  DeterministicRng rng(4242);
  obs::TraceLog trace;
  obs::ScopedTraceSink sink(trace);
  auto send = [&net](const std::string& to, wire::Envelope e) {
    net.send(to, std::move(e));
  };

  auto repl_key = crypto::SessionKey::random(rng);
  Leader active(LeaderConfig{"L", RekeyPolicy::strict()}, rng);
  active.set_send(send);
  ha::ReplicatorConfig rc;
  rc.repl_key = repl_key;
  rc.snapshot_interval = 0;   // no periodic baselines: keep the chart minimal
  rc.heartbeat_interval = 0;  // crash silence is the only liveness signal
  ha::LeaderReplicator replicator(active, rc, rng);
  replicator.set_send(send);
  net.attach("L", [&](const wire::Envelope& e) {
    if (e.label == wire::Label::ReplAck)
      replicator.handle(e);
    else
      active.handle(e);
  });

  ha::StandbyConfig sc;
  sc.repl_key = repl_key;
  ha::StandbyLeader standby(sc, rng);
  standby.set_send(send);
  std::unique_ptr<Leader> promoted;
  ha::FailoverConfig fc;
  fc.suspect_after = 2;
  fc.epoch_fence = 1000;
  fc.promoted.id = "L2";
  fc.promoted.rekey = RekeyPolicy::strict();
  ha::FailoverController controller(standby, fc);
  net.attach("L2", [&](const wire::Envelope& e) {
    if (e.label == wire::Label::ReplDelta ||
        e.label == wire::Label::ReplSnapshot ||
        e.label == wire::Label::ReplHeartbeat)
      standby.handle(e);
    else if (promoted)
      promoted->handle(e);
  });
  replicator.start();

  auto pa = crypto::LongTermKey::random(rng);
  ASSERT_TRUE(active.register_member("alice", pa).ok());
  Member alice("alice", "L", pa, rng);
  alice.set_send(send);
  alice.set_suspect_after(3);
  alice.enable_auto_rejoin(RetryPolicy::every_tick());
  alice.set_failover_targets({"L", "L2"});
  net.attach("alice", [&](const wire::Envelope& e) { alice.handle(e); });
  ASSERT_TRUE(alice.join().ok());
  net.run();
  ASSERT_TRUE(alice.connected());
  ASSERT_EQ(standby.applied_seq(), replicator.head()) << "standby behind";
  trace.clear();  // golden-diff the failover itself, not the group forming

  net.detach("L");  // the crash
  for (int t = 0;
       t < 20 && !(promoted && alice.connected() && alice.epoch() > 1000u);
       ++t) {
    alice.tick();
    if (auto l = controller.tick()) {
      promoted = std::move(l);
      promoted->set_send(send);
    }
    net.run();
  }
  ASSERT_TRUE(promoted);
  ASSERT_TRUE(alice.connected());
  EXPECT_GT(alice.epoch(), 1000u) << "rejoined below the epoch fence";

  // The promoted leader's own events sit at @0: it is a fresh incarnation
  // whose virtual clock starts at its promotion, which is the point.
  const std::string golden =
      "@2    L2         suspect         [active_silent] =2\n"
      "@2    L2         promote         -> L          [promoted] =1001\n"
      "@3    alice      suspect         -> L\n"
      "@3    alice      rejoin          -> L2         [retarget]\n"
      "@3    alice      rejoin          -> L2\n"
      "@3    alice      member_phase    -> L2         [NotConnected->WaitingForKey]\n"
      "@0    L2         leader_phase    -> alice      [NotConnected->WaitingForKeyAck]\n"
      "@3    alice      member_phase    -> L2         [WaitingForKey->Connected]\n"
      "@0    L2         leader_phase    -> alice      [WaitingForKeyAck->Connected]\n"
      "@0    L2         join            -> alice\n"
      "@0    L2         rekey           =1002\n"
      "@0    L2         admin_send      -> alice      [new_group_key]\n"
      "@3    alice      rekey           -> L2         =1002\n"
      "@0    L2         admin_ack       -> alice\n"
      "@0    L2         admin_send      -> alice      [member_list]\n"
      "@0    L2         admin_ack       -> alice\n";
  EXPECT_EQ(strip_trailing_blanks(net::format_event_chart(trace.events())),
            golden);
}

// Determinism: the same scenario under the same seed yields a byte-identical
// chart — the property that makes golden-trace diffs trustworthy in CI.
// Tree-mode rekey at group scale (PROTOCOL.md §13): a 16-member group in
// tree mode, deep enough (depth 5 = 32 leaves) that no growth rebuild fires
// mid-chart. The join/expel rekeys broadcast ONE KeyTreeUpdate whose
// keytree_level lines show the O(log N) rotation shape — compare the
// per-member admin fan-out the flat charts above pay.
struct KeyTreeTracedWorld {
  explicit KeyTreeTracedWorld(std::uint64_t seed) : rng(seed), sink(trace) {
    LeaderConfig config;
    config.id = "L";
    config.rekey = RekeyPolicy::tree();
    config.keytree_depth = 5;
    leader = std::make_unique<Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
  }

  Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    EXPECT_TRUE(leader->register_member(id, pa).ok());
    auto m = std::make_unique<Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  std::string chart() const {
    return net::format_event_chart(trace.events());
  }

  net::SimNetwork net;
  DeterministicRng rng;
  obs::TraceLog trace;
  obs::ScopedTraceSink sink;
  std::unique_ptr<Leader> leader;
  std::map<std::string, std::unique_ptr<Member>> members;
};

std::vector<std::string> sixteen_ids() {
  std::vector<std::string> ids;
  for (int i = 1; i <= 16; ++i)
    ids.push_back("m" + std::string(i < 10 ? "0" : "") + std::to_string(i));
  return ids;
}

TEST(GoldenTrace, KeyTreeSixteenthJoinIsOneBroadcast) {
  KeyTreeTracedWorld w(77);
  auto ids = sixteen_ids();
  for (const auto& id : ids) w.add(id);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(w.members[ids[static_cast<std::size_t>(i)]]->join().ok());
    w.net.run();
  }
  w.trace.clear();  // golden-diff only the 16th join

  ASSERT_TRUE(w.members["m16"]->join().ok());
  w.net.run();
  ASSERT_TRUE(w.members["m16"]->connected());
  for (const auto& id : ids)
    ASSERT_EQ(w.members[id]->epoch(), w.leader->epoch()) << id;

  // One KeyTreeUpdate broadcast (rekey + five keytree_level lines) covers
  // the whole group; only the joiner gets a unicast keytree_assign. Compare
  // SecondJoinFansOutToIncumbent, where the flat policy sends new_group_key
  // to every member individually.
  const std::string golden =
      "@0    m16        member_phase    -> L          [NotConnected->WaitingForKey]\n"
      "@0    L          leader_phase    -> m16        [NotConnected->WaitingForKeyAck]\n"
      "@0    m16        member_phase    -> L          [WaitingForKey->Connected]\n"
      "@0    L          leader_phase    -> m16        [WaitingForKeyAck->Connected]\n"
      "@0    L          join            -> m16\n"
      "@0    L          admin_send      -> m16        [keytree_assign]\n"
      "@0    L          rekey           =16\n"
      "@0    L          keytree_level   [lvl4] =16\n"
      "@0    L          keytree_level   [lvl3] =16\n"
      "@0    L          keytree_level   [lvl2] =16\n"
      "@0    L          keytree_level   [lvl1] =16\n"
      "@0    L          keytree_level   [lvl0] =16\n"
      "@0    L          admin_send      -> m01        [member_joined]\n"
      "@0    L          admin_send      -> m02        [member_joined]\n"
      "@0    L          admin_send      -> m03        [member_joined]\n"
      "@0    L          admin_send      -> m04        [member_joined]\n"
      "@0    L          admin_send      -> m05        [member_joined]\n"
      "@0    L          admin_send      -> m06        [member_joined]\n"
      "@0    L          admin_send      -> m07        [member_joined]\n"
      "@0    L          admin_send      -> m08        [member_joined]\n"
      "@0    L          admin_send      -> m09        [member_joined]\n"
      "@0    L          admin_send      -> m10        [member_joined]\n"
      "@0    L          admin_send      -> m11        [member_joined]\n"
      "@0    L          admin_send      -> m12        [member_joined]\n"
      "@0    L          admin_send      -> m13        [member_joined]\n"
      "@0    L          admin_send      -> m14        [member_joined]\n"
      "@0    L          admin_send      -> m15        [member_joined]\n"
      "@0    m01        rekey           -> L          =16\n"
      "@0    m02        rekey           -> L          =16\n"
      "@0    m03        rekey           -> L          =16\n"
      "@0    m04        rekey           -> L          =16\n"
      "@0    m05        rekey           -> L          =16\n"
      "@0    m06        rekey           -> L          =16\n"
      "@0    m07        rekey           -> L          =16\n"
      "@0    m08        rekey           -> L          =16\n"
      "@0    m09        rekey           -> L          =16\n"
      "@0    m10        rekey           -> L          =16\n"
      "@0    m11        rekey           -> L          =16\n"
      "@0    m12        rekey           -> L          =16\n"
      "@0    m13        rekey           -> L          =16\n"
      "@0    m14        rekey           -> L          =16\n"
      "@0    m15        rekey           -> L          =16\n"
      "@0    m16        rekey           -> L          =16\n"
      "@0    L          admin_ack       -> m16\n"
      "@0    L          admin_send      -> m16        [member_list]\n"
      "@0    L          admin_ack       -> m01\n"
      "@0    L          admin_ack       -> m02\n"
      "@0    L          admin_ack       -> m03\n"
      "@0    L          admin_ack       -> m04\n"
      "@0    L          admin_ack       -> m05\n"
      "@0    L          admin_ack       -> m06\n"
      "@0    L          admin_ack       -> m07\n"
      "@0    L          admin_ack       -> m08\n"
      "@0    L          admin_ack       -> m09\n"
      "@0    L          admin_ack       -> m10\n"
      "@0    L          admin_ack       -> m11\n"
      "@0    L          admin_ack       -> m12\n"
      "@0    L          admin_ack       -> m13\n"
      "@0    L          admin_ack       -> m14\n"
      "@0    L          admin_ack       -> m15\n"
      "@0    L          admin_ack       -> m16\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

TEST(GoldenTrace, KeyTreeExpelRotatesThePrunedPath) {
  KeyTreeTracedWorld w(77);
  auto ids = sixteen_ids();
  for (const auto& id : ids) w.add(id);
  for (const auto& id : ids) {
    ASSERT_TRUE(w.members[id]->join().ok());
    w.net.run();
  }
  w.trace.clear();  // golden-diff only the expulsion

  ASSERT_TRUE(w.leader->expel("m05", "for cause").ok());
  w.net.run();
  ASSERT_FALSE(w.members["m05"]->connected());
  for (const auto& id : ids) {
    if (id == "m05") continue;
    ASSERT_EQ(w.members[id]->epoch(), w.leader->epoch()) << id;
  }

  // The expulsion rotates exactly the five KEKs on the pruned leaf's path
  // (lvl4..lvl0); m05 never sees epoch 17 and suppresses the Ack for its
  // terminal Expelled notice (the "leave [expelled]" line has no ack).
  const std::string golden =
      "@0    L          expel           -> m05        [for cause]\n"
      "@0    L          admin_send      -> m01        [member_left]\n"
      "@0    L          admin_send      -> m02        [member_left]\n"
      "@0    L          admin_send      -> m03        [member_left]\n"
      "@0    L          admin_send      -> m04        [member_left]\n"
      "@0    L          admin_send      -> m06        [member_left]\n"
      "@0    L          admin_send      -> m07        [member_left]\n"
      "@0    L          admin_send      -> m08        [member_left]\n"
      "@0    L          admin_send      -> m09        [member_left]\n"
      "@0    L          admin_send      -> m10        [member_left]\n"
      "@0    L          admin_send      -> m11        [member_left]\n"
      "@0    L          admin_send      -> m12        [member_left]\n"
      "@0    L          admin_send      -> m13        [member_left]\n"
      "@0    L          admin_send      -> m14        [member_left]\n"
      "@0    L          admin_send      -> m15        [member_left]\n"
      "@0    L          admin_send      -> m16        [member_left]\n"
      "@0    L          rekey           =17\n"
      "@0    L          keytree_level   [lvl4] =17\n"
      "@0    L          keytree_level   [lvl3] =17\n"
      "@0    L          keytree_level   [lvl2] =17\n"
      "@0    L          keytree_level   [lvl1] =17\n"
      "@0    L          keytree_level   [lvl0] =17\n"
      "@0    m05        leave           -> L          [expelled]\n"
      "@0    m01        rekey           -> L          =17\n"
      "@0    m02        rekey           -> L          =17\n"
      "@0    m03        rekey           -> L          =17\n"
      "@0    m04        rekey           -> L          =17\n"
      "@0    m06        rekey           -> L          =17\n"
      "@0    m07        rekey           -> L          =17\n"
      "@0    m08        rekey           -> L          =17\n"
      "@0    m09        rekey           -> L          =17\n"
      "@0    m10        rekey           -> L          =17\n"
      "@0    m11        rekey           -> L          =17\n"
      "@0    m12        rekey           -> L          =17\n"
      "@0    m13        rekey           -> L          =17\n"
      "@0    m14        rekey           -> L          =17\n"
      "@0    m15        rekey           -> L          =17\n"
      "@0    m16        rekey           -> L          =17\n"
      "@0    L          admin_ack       -> m01\n"
      "@0    L          admin_ack       -> m02\n"
      "@0    L          admin_ack       -> m03\n"
      "@0    L          admin_ack       -> m04\n"
      "@0    L          admin_ack       -> m06\n"
      "@0    L          admin_ack       -> m07\n"
      "@0    L          admin_ack       -> m08\n"
      "@0    L          admin_ack       -> m09\n"
      "@0    L          admin_ack       -> m10\n"
      "@0    L          admin_ack       -> m11\n"
      "@0    L          admin_ack       -> m12\n"
      "@0    L          admin_ack       -> m13\n"
      "@0    L          admin_ack       -> m14\n"
      "@0    L          admin_ack       -> m15\n"
      "@0    L          admin_ack       -> m16\n";
  EXPECT_EQ(strip_trailing_blanks(w.chart()), golden);
}

TEST(GoldenTrace, ChartIsDeterministicAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    TracedWorld w(7);
    auto& alice = w.add("alice");
    ASSERT_TRUE(alice.join().ok());
    w.net.run();
    w.leader.probe_liveness();
    w.net.run();
    if (run == 0) {
      first = w.chart();
    } else {
      EXPECT_EQ(w.chart(), first);
    }
  }
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace enclaves::core
