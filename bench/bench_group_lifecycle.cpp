// E1 — full group lifecycle (Figure 1 / Section 2.1 semantics): N members
// join, exchange data, churn, and leave, over the simulated network and
// over real TCP loopback. Run: build/bench/bench_group_lifecycle
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/leader.h"
#include "core/member.h"
#include "net/sim_network.h"
#include "net/tcp.h"
#include "util/rng.h"

namespace {

using namespace enclaves;

// Complete lifecycle on SimNetwork: join all, everyone speaks once, all
// leave. Items processed = protocol messages delivered.
void BM_LifecycleSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DeterministicRng rng(1);
    net::SimNetwork net;
    core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                        rng);
    leader.set_send([&net](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [&leader](const wire::Envelope& e) { leader.handle(e); });

    std::map<std::string, std::unique_ptr<core::Member>> members;
    for (int i = 0; i < n; ++i) {
      std::string id = "m" + std::to_string(i);
      auto pa = crypto::LongTermKey::random(rng);
      (void)leader.register_member(id, pa);
      auto m = std::make_unique<core::Member>(id, "L", pa, rng);
      m->set_send([&net](const std::string& to, wire::Envelope e) {
        net.send(to, std::move(e));
      });
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
      (void)raw->join();
      net.run();
    }
    for (auto& [id, m] : members) {
      (void)m->send_data(to_bytes("hello from " + id));
      net.run();
    }
    for (auto& [id, m] : members) {
      (void)m->leave();
      net.run();
    }
    if (leader.member_count() != 0) state.SkipWithError("lifecycle failed");
    state.counters["messages"] = static_cast<double>(net.packets_sent());
  }
}
BENCHMARK(BM_LifecycleSim)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Same lifecycle over REAL TCP loopback sockets (leader node + N member
// nodes in one thread, interleaved polling).
void BM_LifecycleTcp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DeterministicRng rng(2);
    net::TcpNode leader_node;
    auto port = leader_node.listen(0);
    if (!port.ok()) {
      state.SkipWithError("listen failed");
      return;
    }
    core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                        rng);
    std::map<std::string, net::ConnId> conn_of;
    leader.set_send([&](const std::string& to, wire::Envelope e) {
      auto it = conn_of.find(to);
      if (it != conn_of.end()) (void)leader_node.send(it->second, e);
    });
    leader_node.set_callbacks({nullptr,
                               [&](net::ConnId c, const wire::Envelope& e) {
                                 conn_of[e.sender] = c;
                                 leader.handle(e);
                               },
                               nullptr});

    std::vector<std::unique_ptr<net::TcpNode>> nodes;
    std::vector<std::unique_ptr<core::Member>> members;
    auto pump = [&](const std::function<bool()>& done) {
      for (int spin = 0; spin < 20000 && !done(); ++spin) {
        leader_node.poll_once(0);
        for (auto& node : nodes) node->poll_once(0);
      }
    };

    for (int i = 0; i < n; ++i) {
      std::string id = "m" + std::to_string(i);
      auto pa = crypto::LongTermKey::random(rng);
      (void)leader.register_member(id, pa);
      auto node = std::make_unique<net::TcpNode>();
      auto conn = node->connect(*port);
      if (!conn.ok()) {
        state.SkipWithError("connect failed");
        return;
      }
      auto member = std::make_unique<core::Member>(id, "L", pa, rng);
      auto* node_raw = node.get();
      auto* member_raw = member.get();
      net::ConnId conn_id = *conn;
      member->set_send([node_raw, conn_id](const std::string&,
                                           wire::Envelope e) {
        (void)node_raw->send(conn_id, e);
      });
      node->set_callbacks({nullptr,
                           [member_raw](net::ConnId, const wire::Envelope& e) {
                             member_raw->handle(e);
                           },
                           nullptr});
      nodes.push_back(std::move(node));
      members.push_back(std::move(member));
      (void)members.back()->join();
      pump([&] { return members.back()->connected() &&
                        members.back()->has_group_key(); });
    }
    for (auto& m : members) (void)m->send_data(to_bytes("ping"));
    pump([&] { return leader.relayed_count() >= static_cast<size_t>(n); });
    for (auto& m : members) (void)m->leave();
    pump([&] { return leader.member_count() == 0; });
    if (leader.member_count() != 0) state.SkipWithError("tcp lifecycle stuck");
  }
}
BENCHMARK(BM_LifecycleTcp)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("group_lifecycle")
