// Key-tree rekey costs (PROTOCOL.md §13, docs/KEYTREE.md): the O(log N)
// leader-side mint vs the flat O(N) re-seal it replaces, the member-side
// apply cost, and end-to-end join latency under both policies. The
// acceptance bar from the key-tree PR: BM_RekeyGroupOfN/1024 (tree mint)
// stays within tens of microseconds.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/keytree.h"
#include "core/leader.h"
#include "core/member.h"
#include "net/sim_network.h"
#include "util/rng.h"
#include "wire/seal.h"

namespace {

using namespace enclaves;

std::uint32_t depth_for(std::size_t leaves) {
  std::uint32_t d = 1;
  while ((std::size_t{1} << d) < leaves) ++d;
  return d;
}

std::string member_name(int i) { return "m" + std::to_string(i); }

// A leader-side KeyTree with n occupied leaves and the session keys the
// leaf KEKs were derived from (the flat comparison re-seals under these).
struct MintHarness {
  MintHarness(int n, std::uint64_t seed)
      : rng(seed),
        tree("L", crypto::default_aead(), rng,
             depth_for(static_cast<std::size_t>(n))) {
    for (int i = 0; i < n; ++i) {
      const std::string id = member_name(i);
      session_keys.push_back(crypto::SessionKey::random(rng));
      tree.assign(id, core::derive_leaf_kek(session_keys.back(), id));
    }
  }

  DeterministicRng rng;
  core::KeyTree tree;
  std::vector<crypto::SessionKey> session_keys;
};

// Tree-mode rekey mint: one membership-change rotation (the path above one
// leaf) in a group of N. This is the cost the key tree makes O(log N) —
// `entries_per_update` is ~2*depth regardless of N.
void BM_RekeyGroupOfN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MintHarness h(n, 91);
  std::uint64_t epoch = 1, entries = 0;
  int next = 0;
  for (auto _ : state) {
    auto update = h.tree.rotate_join(member_name(next), ++epoch);
    next = (next + 1) % n;
    entries += update.entries.size();
    benchmark::DoNotOptimize(update);
  }
  state.counters["entries_per_update"] = benchmark::Counter(
      static_cast<double>(entries), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RekeyGroupOfN)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// The flat oracle's mint for the same event: a fresh Kg sealed once per
// member (the paper's literal O(N) rekey, without the stop-and-wait
// transport around it — see BENCH_protocol_perf.json for that).
void BM_RekeyFlatGroupOfN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MintHarness h(n, 92);
  const auto& aead = crypto::default_aead();
  std::uint64_t epoch = 1;
  for (auto _ : state) {
    const auto kg = crypto::GroupKey::random(h.rng);
    ++epoch;
    for (int i = 0; i < n; ++i) {
      wire::AdminPayload payload{
          "L", member_name(i), crypto::ProtocolNonce::random(h.rng),
          crypto::ProtocolNonce::random(h.rng), wire::NewGroupKey{kg, epoch}};
      auto env = wire::make_sealed(
          aead, h.session_keys[static_cast<std::size_t>(i)].view(), h.rng,
          wire::Label::AdminMsg, "L", member_name(i), wire::encode(payload));
      benchmark::DoNotOptimize(env);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RekeyFlatGroupOfN)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// Member-side apply: decrypt the reachable entries of a broadcast rotation
// and commit the new path. The rotated member walks its whole path; the
// others stop at the first shared ancestor.
void BM_KeyTreeApplyUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MintHarness h(n, 93);
  const auto& aead = crypto::default_aead();

  core::KeyTreeView view;
  view.assign(h.tree.leaf_of(member_name(0)), h.session_keys[0],
              member_name(0));
  // Bootstrap the view's path from its own join rotation.
  std::uint64_t epoch = 2;
  auto bootstrap = h.tree.rotate_join(member_name(0), epoch);
  (void)view.apply_update(aead, bootstrap, epoch - 1);

  int next = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto update = h.tree.rotate_join(member_name(next), ++epoch);
    next = (next + 1) % n;
    state.ResumeTiming();
    auto applied = view.apply_update(aead, update, epoch - 1);
    benchmark::DoNotOptimize(applied);
    if (applied.outcome != core::KeyTreeView::Outcome::applied) {
      state.SkipWithError("apply refused");
      break;
    }
  }
}
BENCHMARK(BM_KeyTreeApplyUpdate)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// End-to-end joins over the lossless SimNetwork (handshake + rekey + notices
// + acks), tree vs flat. The world persists across iterations; each
// iteration times one join and pays the matching leave off the clock.

struct World {
  World(core::RekeyPolicy policy, std::uint32_t depth)
      : rng(42) {
    core::LeaderConfig config{"L", policy};
    config.keytree_depth = depth;
    leader = std::make_unique<core::Leader>(config, rng);
    leader->set_send(sender());
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
  }

  core::SendFn sender() {
    return [this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    };
  }

  core::Member& add(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    (void)leader->register_member(id, pa);
    auto m = std::make_unique<core::Member>(id, "L", pa, rng);
    m->set_send(sender());
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    return *raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  std::unique_ptr<core::Leader> leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

void join_churn(benchmark::State& state, core::RekeyPolicy policy) {
  const int n = static_cast<int>(state.range(0));
  World w(policy, depth_for(static_cast<std::size_t>(n) + 2));
  for (int i = 0; i < n; ++i) {
    (void)w.add(member_name(i)).join();
    w.net.run();
  }
  auto& newcomer = w.add("newcomer");
  for (auto _ : state) {
    (void)newcomer.join();
    w.net.run();
    state.PauseTiming();
    if (!newcomer.connected()) {
      state.SkipWithError("join stalled");
      state.ResumeTiming();
      break;
    }
    (void)newcomer.leave();
    w.net.run();
    state.ResumeTiming();
  }
}

void BM_JoinIntoGroupOfN_Tree(benchmark::State& state) {
  join_churn(state, core::RekeyPolicy::tree());
}
BENCHMARK(BM_JoinIntoGroupOfN_Tree)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_JoinIntoGroupOfN_Flat(benchmark::State& state) {
  join_churn(state, core::RekeyPolicy::strict());
}
// Flat stops at 256: building the N-member world is O(N^2) admin exchanges
// under the strict policy, and the per-join cost at 1024 is the very O(N)
// wall the key tree removes (extrapolate from the 64->256 slope).
BENCHMARK(BM_JoinIntoGroupOfN_Flat)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("keytree")
