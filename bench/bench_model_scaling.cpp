// E14 — model-checker scalability: states and wall-clock versus the
// exploration bounds, and the cost of the intruder's synthesis power. The
// analog of the paper's "two person-weeks of PVS effort" datum: what does
// mechanical re-verification of the same properties cost here?
// Run: build/bench/bench_model_scaling
#include <cstdio>

#include "model/explorer.h"

int main() {
  using namespace enclaves::model;

  std::printf("E14: model-checker scaling\n");
  std::printf("==========================\n\n");
  std::printf("  %-8s %-6s %-7s %-15s %10s %12s %8s %9s\n", "members",
              "joins", "admins", "intruder-fresh", "states", "transitions",
              "depth", "time");

  struct Row {
    int members, joins, admins;
    bool fresh;
  };
  const Row rows[] = {
      {1, 1, 0, true},  {1, 1, 1, true},  {1, 1, 2, true},  {1, 1, 3, true},
      {1, 2, 0, true},  {1, 2, 1, true},  {1, 2, 2, true},  {1, 2, 3, true},
      {1, 3, 2, true},  {1, 3, 3, true},
      {1, 1, 2, false}, {1, 2, 2, false}, {1, 3, 3, false},
      {2, 1, 1, true},  {2, 1, 2, true},
  };

  int failures = 0;
  for (const Row& row : rows) {
    ModelConfig cfg;
    cfg.members = row.members;
    cfg.max_joins = row.joins;
    cfg.max_admins = row.admins;
    cfg.intruder_fresh = row.fresh;
    ProtocolModel model(cfg);
    InvariantChecker checker(model);
    Explorer explorer(model, checker);
    auto r = explorer.run(2000000);
    std::printf("  %-8d %-6d %-7d %-15s %10zu %12zu %8zu %8.2fs%s\n",
                row.members, row.joins, row.admins, row.fresh ? "yes" : "no",
                r.states_explored, r.transitions_fired, r.max_depth,
                r.seconds, r.truncated ? " (truncated)" : "");
    if (!r.ok()) {
      std::printf("      UNEXPECTED VIOLATIONS: %zu\n", r.violations.size());
      ++failures;
    }
  }

  std::printf("\nNote: state count grows with the number of sessions "
              "(joins) and outstanding\nadmin messages; every row "
              "re-verifies all Section 5 properties exhaustively.\n");
  return failures == 0 ? 0 : 1;
}
