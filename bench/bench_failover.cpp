// Costs of the HA layer (PROTOCOL.md §11): per-delta replication overhead
// on the active leader's mutation path, baseline snapshot install on the
// standby, promotion latency, and the full crash -> suspect -> promote ->
// rejoin recovery cycle in virtual ticks.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/leader.h"
#include "core/member.h"
#include "ha/failover.h"
#include "ha/replicator.h"
#include "ha/standby.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace {

using namespace enclaves;

// Active leader + replicator + warm standby + controller + N members over a
// lossless SimNetwork. Members carry failover targets {"L", "L2"} so the
// recovery benchmark exercises the real retarget path.
struct HaWorld {
  explicit HaWorld(std::uint64_t seed, int member_count = 4)
      : rng(seed), repl_key(crypto::SessionKey::random(rng)) {
    active = std::make_unique<core::Leader>(
        core::LeaderConfig{"L", core::RekeyPolicy::strict()}, rng);
    active->set_send(sender());
    ha::ReplicatorConfig rc;
    rc.repl_key = repl_key;
    replicator = std::make_unique<ha::LeaderReplicator>(*active, rc, rng);
    replicator->set_send(sender());
    net.attach("L", [this](const wire::Envelope& e) {
      if (e.label == wire::Label::ReplAck)
        replicator->handle(e);
      else
        active->handle(e);
    });

    ha::StandbyConfig sc;
    sc.repl_key = repl_key;
    standby = std::make_unique<ha::StandbyLeader>(sc, rng);
    standby->set_send(sender());
    ha::FailoverConfig fc;
    fc.suspect_after = 4;
    fc.promoted.id = "L2";
    fc.promoted.rekey = core::RekeyPolicy::strict();
    controller = std::make_unique<ha::FailoverController>(*standby, fc);
    net.attach("L2", [this](const wire::Envelope& e) {
      if (e.label == wire::Label::ReplDelta ||
          e.label == wire::Label::ReplSnapshot ||
          e.label == wire::Label::ReplHeartbeat)
        standby->handle(e);
      else if (promoted)
        promoted->handle(e);
    });
    replicator->start();

    for (int i = 0; i < member_count; ++i) {
      const std::string id = "m" + std::to_string(i);
      auto pa = crypto::LongTermKey::random(rng);
      (void)active->register_member(id, pa);
      auto m = std::make_unique<core::Member>(id, "L", pa, rng);
      m->set_send(sender());
      m->set_suspect_after(6);
      m->enable_auto_rejoin(core::RetryPolicy::every_tick());
      m->set_failover_targets({"L", "L2"});
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  core::SendFn sender() {
    return [this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    };
  }

  bool converged_on(const core::Leader& l) const {
    for (const auto& [id, m] : members) {
      if (!m->connected() || m->epoch() != l.epoch()) return false;
      const auto* s = l.session(id);
      if (!s || s->state() != core::LeaderSession::State::connected ||
          s->queue_depth() != 0)
        return false;
    }
    return l.member_count() == members.size();
  }

  std::uint64_t join_all() {
    for (auto& [id, m] : members) (void)m->join();
    std::uint64_t steps = 0;
    while (!converged_on(*active) && steps < 10'000) {
      net.run();
      active->tick();
      replicator->tick();
      for (auto& [id, m] : members) m->tick();
      net.run();
      ++steps;
    }
    return steps;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  crypto::SessionKey repl_key;
  std::unique_ptr<core::Leader> active;
  std::unique_ptr<ha::LeaderReplicator> replicator;
  std::unique_ptr<ha::StandbyLeader> standby;
  std::unique_ptr<ha::FailoverController> controller;
  std::unique_ptr<core::Leader> promoted;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

// One rekey delta end to end: emit + seal on the active, decrypt + apply on
// the standby, cumulative ack back. No members, so the admin fan-out is out
// of the picture and this isolates the replication tax per state change.
void BM_ReplRekeyDelta(benchmark::State& state) {
  HaWorld w(21, /*member_count=*/0);
  w.net.run();  // drain the initial baseline + ack
  for (auto _ : state) {
    w.active->rekey();
    w.net.run();
    benchmark::DoNotOptimize(w.standby->applied_seq());
  }
  state.counters["standby_lag"] =
      static_cast<double>(w.replicator->lag());
}
BENCHMARK(BM_ReplRekeyDelta);

// Sealed baseline install on a fresh standby, arg = registered members.
// This is the resync path a gapped standby pays: decrypt, deserialize the
// LeaderSnapshot, swap it in.
void BM_StandbyBaselineInstall(benchmark::State& state) {
  DeterministicRng rng(11);
  auto repl_key = crypto::SessionKey::random(rng);
  core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                      rng);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    (void)leader.register_member("m" + std::to_string(i),
                                 crypto::LongTermKey::random(rng));
  std::vector<wire::Envelope> sent;
  ha::ReplicatorConfig rc;
  rc.repl_key = repl_key;
  ha::LeaderReplicator repl(leader, rc, rng);
  repl.set_send(
      [&](const std::string&, wire::Envelope e) { sent.push_back(std::move(e)); });
  repl.start();  // sent.front() is the sealed baseline snapshot

  for (auto _ : state) {
    ha::StandbyConfig sc;
    sc.repl_key = repl_key;
    ha::StandbyLeader standby(sc, rng);
    standby.handle(sent.front());
    benchmark::DoNotOptimize(standby.has_baseline());
  }
}
BENCHMARK(BM_StandbyBaselineInstall)->Arg(4)->Arg(64)->Arg(512);

// Promotion proper: replicated state -> live fenced Leader, arg = members
// in the baseline. The standby construction + baseline feed is untimed.
void BM_StandbyPromotion(benchmark::State& state) {
  DeterministicRng rng(12);
  auto repl_key = crypto::SessionKey::random(rng);
  core::Leader leader(core::LeaderConfig{"L", core::RekeyPolicy::strict()},
                      rng);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    (void)leader.register_member("m" + std::to_string(i),
                                 crypto::LongTermKey::random(rng));
  std::vector<wire::Envelope> sent;
  ha::ReplicatorConfig rc;
  rc.repl_key = repl_key;
  ha::LeaderReplicator repl(leader, rc, rng);
  repl.set_send(
      [&](const std::string&, wire::Envelope e) { sent.push_back(std::move(e)); });
  repl.start();

  for (auto _ : state) {
    state.PauseTiming();
    ha::StandbyConfig sc;
    sc.repl_key = repl_key;
    ha::StandbyLeader standby(sc, rng);
    standby.handle(sent.front());
    state.ResumeTiming();
    auto promoted = standby.promote(
        core::LeaderConfig{"L2", core::RekeyPolicy::strict()}, 1024);
    benchmark::DoNotOptimize(promoted);
  }
}
BENCHMARK(BM_StandbyPromotion)->Arg(4)->Arg(64);

// Whole failover cycle: crash the active mid-group, controller suspects the
// silence and promotes, the four members suspect, retarget, re-authenticate
// above the fence. steps_to_recover is the deterministic tick count — the
// quantity the recovery-time model in docs/HA.md predicts.
void BM_FailoverRecovery(benchmark::State& state) {
  std::uint64_t seed = 300, total_steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HaWorld w(seed++);
    w.join_all();
    state.ResumeTiming();

    w.net.detach("L");  // the crash
    std::uint64_t steps = 0;
    while (steps < 2'000) {
      w.net.run();
      if (!w.promoted) {
        if (auto l = w.controller->tick()) {
          w.promoted = std::move(l);
          w.promoted->set_send(w.sender());
        }
      } else {
        w.promoted->tick();
        if (w.converged_on(*w.promoted)) break;
      }
      for (auto& [id, m] : w.members) m->tick();
      w.net.run();
      ++steps;
    }
    total_steps += steps;
    benchmark::DoNotOptimize(steps);
  }
  state.counters["steps_to_recover"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FailoverRecovery);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("failover")
