// Shared main() for the google-benchmark binaries: runs the registered
// benchmarks with the normal console output, records protocol metrics
// (obs::MetricsRegistry attached as the process sink for the whole run),
// and writes a machine-readable BENCH_<tag>.json blob — ns/op per benchmark
// plus every protocol counter the run touched. CI archives these blobs;
// future perf PRs diff them against their predecessors.
//
// Environment knobs:
//   ENCLAVES_BENCH_OUT_DIR     directory for BENCH_<tag>.json (default ".")
//   ENCLAVES_BENCH_NO_METRICS  "1" detaches the metrics sink — the
//                              zero-cost-when-disabled configuration used
//                              for regression-baseline timing runs
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace enclaves::benchjson {

struct RunRow {
  std::string name;
  std::uint64_t iterations = 0;
  double real_time = 0;  // per iteration, in `time_unit`
  double cpu_time = 0;
  std::string time_unit;
};

/// Console reporter that additionally collects per-benchmark rows.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      RunRow row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::uint64_t>(run.iterations);
      row.real_time = run.GetAdjustedRealTime();
      row.cpu_time = run.GetAdjustedCPUTime();
      row.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  const std::vector<RunRow>& rows() const { return rows_; }

 private:
  std::vector<RunRow> rows_;
};

inline void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // benchmark names never contain control chars; be safe
      continue;
    }
    out += c;
  }
  out += '"';
}

inline int run_bench_main(const char* tag, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  obs::MetricsRegistry metrics;
  const char* no_metrics = std::getenv("ENCLAVES_BENCH_NO_METRICS");
  const bool attach = !(no_metrics && no_metrics[0] == '1');
  if (attach) obs::set_metrics_sink(&metrics);

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  obs::set_metrics_sink(nullptr);

  std::string out = "{\n  \"bench\": ";
  append_escaped(out, tag);
  out += ",\n  \"metrics_attached\": ";
  out += attach ? "true" : "false";
  out += ",\n  \"results\": [";
  for (std::size_t i = 0; i < reporter.rows().size(); ++i) {
    const RunRow& row = reporter.rows()[i];
    out += i ? ",\n" : "\n";
    out += "    {\"name\": ";
    append_escaped(out, row.name);
    out += ", \"iterations\": " + std::to_string(row.iterations);
    out += ", \"real_time\": " + std::to_string(row.real_time);
    out += ", \"cpu_time\": " + std::to_string(row.cpu_time);
    out += ", \"time_unit\": ";
    append_escaped(out, row.time_unit);
    out += "}";
  }
  out += reporter.rows().empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": ";
  out += metrics.to_json();
  // metrics.to_json() ends with "}\n"; trim the newline before closing.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += "\n}\n";

  const char* dir = std::getenv("ENCLAVES_BENCH_OUT_DIR");
  std::string path = std::string(dir && dir[0] ? dir : ".") + "/BENCH_" +
                     tag + ".json";
  std::ofstream f(path, std::ios::trunc);
  f << out;
  if (!f) {
    std::fprintf(stderr, "bench_json: failed to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_json: wrote %s\n", path.c_str());

  benchmark::Shutdown();
  return 0;
}

}  // namespace enclaves::benchjson

/// Defines main() for a benchmark binary tagged `tag` (used in the output
/// file name: BENCH_<tag>.json).
#define ENCLAVES_BENCH_JSON_MAIN(tag)                            \
  int main(int argc, char** argv) {                              \
    return ::enclaves::benchjson::run_bench_main(tag, argc, argv); \
  }
