// E8–E10 (symbolic twin) — the checker DISCOVERS the Section 2.3 attacks
// in the legacy protocol model, with minimal counterexample traces, and
// proves the freshness fix eliminates them. This is the model-level
// counterpart of bench_attack_matrix: there the scripted attacks are
// executed; here the explorer finds them on its own.
// Run: build/bench/bench_model_legacy
#include <cstdio>
#include <map>
#include <string>

#include "model/legacy_model.h"

int main() {
  using namespace enclaves::model;

  std::printf("E8-E10 (symbolic): attack discovery in the legacy model\n");
  std::printf("=======================================================\n\n");
  std::printf("Scenario: past member E kept the old group key Kg0 and the\n"
              "recorded rekey message {Kg0}_Ka; current Kg1 and the channel\n"
              "key Ka are secret. The explorer searches ALL interleavings.\n\n");

  int failures = 0;

  {
    LegacyModel model(LegacyModelConfig{});
    auto r = explore_legacy(model);
    std::map<std::string, int> by_property;
    for (const auto& v : r.violations) ++by_property[v.property];

    std::printf("VULNERABLE (Section 2.2) model: %zu states, %zu "
                "transitions\n", r.states_explored, r.transitions_fired);
    std::printf("  %-16s %-10s  paper attack\n", "property", "violations");
    std::printf("  %-16s %-10d  old-key replay forces a downgrade (E10)\n",
                "key-freshness", by_property["key-freshness"]);
    std::printf("  %-16s %-10d  past member reads new traffic (E10)\n",
                "confidentiality", by_property["confidentiality"]);
    std::printf("  %-16s %-10d  forged mem_removed distorts the view (E9)\n",
                "view-integrity", by_property["view-integrity"]);
    if (by_property["key-freshness"] == 0 ||
        by_property["confidentiality"] == 0 ||
        by_property["view-integrity"] == 0) {
      std::printf("  UNEXPECTED: an attack class was NOT found\n");
      ++failures;
    }
    std::printf("\n  shortest attack found (BFS-minimal):\n");
    for (const auto& step : r.counterexample)
      std::printf("    -> %s\n", step.c_str());
  }

  {
    LegacyModelConfig cfg;
    cfg.fix_freshness = true;
    LegacyModel model(cfg);
    auto r = explore_legacy(model);
    std::printf("\nFIXED model (freshness check, abstracting the §3.2 nonce "
                "chain): %zu states\n", r.states_explored);
    if (r.ok()) {
      std::printf("  no violations — every discovered attack is eliminated "
                  "by the repair\n");
    } else {
      std::printf("  UNEXPECTED: %zu violations survive the fix\n",
                  r.violations.size());
      ++failures;
    }
  }

  std::printf("\nRESULT: %s\n",
              failures == 0
                  ? "matches the paper — the checker rediscovers every "
                    "Section 2.3 attack\n        and the improved design "
                    "removes them"
                  : "MISMATCH");
  return failures == 0 ? 0 : 1;
}
