// E15 — ablation of the improved protocol's safeguards: disable one
// ingredient at a time and show, by exhaustive exploration, exactly which
// verified property breaks and with what counterexample. This demonstrates
// that the paper's protocol elements are all load-bearing:
//
//   ingredient removed            expected broken property
//   --------------------------    -----------------------------------
//   N1 echo in AuthKeyDist        usr-key-in-use / ka-secrecy (a replayed
//                                 key distribution resurrects an Oops'd key)
//   N_{2i+1} chain in AdminMsg    rcv-prefix-snd (replayed admin messages
//                                 are re-accepted: the §2.3 attack returns)
//
// Exits nonzero if the faithful protocol breaks or an ablation FAILS to
// break (either would falsify the analysis).
// Run: build/bench/bench_ablation
#include <cstdio>
#include <map>
#include <string>

#include "model/explorer.h"

namespace {

using namespace enclaves::model;

struct Ablation {
  const char* name;
  ModelConfig cfg;
  const char* expect_broken;  // property expected to fail ("" = none)
};

}  // namespace

int main() {
  std::printf("E15: protocol-ingredient ablations\n");
  std::printf("==================================\n\n");

  ModelConfig faithful;
  faithful.max_joins = 2;
  faithful.max_admins = 2;

  ModelConfig no_echo = faithful;
  no_echo.check_keydist_echo = false;

  ModelConfig no_chain = faithful;
  no_chain.check_admin_chain = false;

  const Ablation ablations[] = {
      {"faithful protocol", faithful, ""},
      {"no N1 echo in AuthKeyDist", no_echo, "usr-key-in-use"},
      {"no nonce chain in AdminMsg", no_chain, "rcv-prefix-snd"},
  };

  int failures = 0;
  for (const Ablation& a : ablations) {
    ProtocolModel model(a.cfg);
    InvariantChecker checker(model);
    Explorer explorer(model, checker);
    auto r = explorer.run(600000);

    std::map<std::string, int> fails;
    for (const auto& v : r.violations) ++fails[v.property];

    std::printf("%-28s  %zu states, %.2fs\n", a.name, r.states_explored,
                r.seconds);
    if (std::string(a.expect_broken).empty()) {
      if (r.ok()) {
        std::printf("    all properties hold (as verified in the paper)\n");
      } else {
        std::printf("    UNEXPECTED: %zu violations in the faithful "
                    "protocol!\n", r.violations.size());
        ++failures;
      }
    } else {
      if (fails[a.expect_broken] > 0) {
        std::printf("    property '%s' BREAKS as predicted (%d violating "
                    "states)\n", a.expect_broken, fails[a.expect_broken]);
        std::printf("    shortest attack found by the checker:\n");
        for (const auto& step : r.counterexample)
          std::printf("      -> %s\n", step.c_str());
      } else {
        std::printf("    UNEXPECTED: ablation did not break '%s'\n",
                    a.expect_broken);
        ++failures;
      }
      // Other collateral breakage is informative, print it.
      for (const auto& [prop, n] : fails) {
        if (n > 0 && prop != a.expect_broken)
          std::printf("    (also broken: %s, %d states)\n", prop.c_str(), n);
      }
    }
    std::printf("\n");
  }

  std::printf("RESULT: %s\n",
              failures == 0
                  ? "every safeguard is load-bearing; the faithful protocol "
                    "verifies clean"
                  : "MISMATCH between ablation predictions and exploration");
  return failures == 0 ? 0 : 1;
}
