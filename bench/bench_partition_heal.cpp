// Costs of partition tolerance (PROTOCOL.md §12): per-op HMAC chain
// extension on the member's offline queue, leader-side chain validation
// during replay, and the full partition -> queue -> expel -> heal -> replay
// -> fast-rejoin cycle in virtual ticks.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/leader.h"
#include "core/member.h"
#include "core/oplog.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace {

using namespace enclaves;

// Member-side queueing tax: one append = one HMAC chain link over
// (prev MAC, seq, epoch, payload). Arg = payload bytes.
void BM_OpLogAppend(benchmark::State& state) {
  DeterministicRng rng(41);
  const auto kr = crypto::SessionKey::random(rng);
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  core::OpLog log(kr);
  for (auto _ : state) {
    if (log.size() == core::OpLog::kMaxEntries) {
      state.PauseTiming();
      log.clear();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(log.append(7, payload).ok());
  }
  benchmark::DoNotOptimize(log.head());
}
BENCHMARK(BM_OpLogAppend)->Arg(64)->Arg(1024)->Arg(16384);

// Leader-side validation tax: walking a replayed chain of N ops and
// recomputing every link (what handle_op_replay pays across a whole
// replay, without the sealing/transport around it).
void BM_OpReplayValidate(benchmark::State& state) {
  DeterministicRng rng(42);
  const auto kr = crypto::SessionKey::random(rng);
  core::OpLog log(kr);
  const Bytes payload(256, 0x3C);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    (void)log.append(7, payload);

  for (auto _ : state) {
    crypto::HmacSha256::Tag chain{};
    bool ok = true;
    for (const auto& entry : log.entries()) {
      chain = core::OpLog::chain_next(kr.view(), chain, entry.seq,
                                      entry.epoch, entry.payload);
      ok &= chain == entry.mac;
    }
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(chain);
  }
  state.counters["ops"] = static_cast<double>(log.size());
}
BENCHMARK(BM_OpReplayValidate)->Arg(8)->Arg(64)->Arg(256);

// Leader + witness + one partition victim over a lossless SimNetwork with a
// manually driven FaultInjector, mirroring tests/reconcile_test.cpp.
struct HealWorld {
  explicit HealWorld(std::uint64_t seed)
      : rng(seed), injector({}, seed ^ 0xBE9C) {
    net.set_tap(injector.tap());
    core::LeaderConfig c{"L", core::RekeyPolicy::strict()};
    c.parole_epochs = 4;
    c.auto_expel_attempts = 3;
    leader = std::make_unique<core::Leader>(c, rng);
    leader->set_send(sender());
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
    for (const char* id : {"victim", "witness"}) {
      auto pa = crypto::LongTermKey::random(rng);
      (void)leader->register_member(id, pa);
      auto m = std::make_unique<core::Member>(id, "L", pa, rng);
      m->set_send(sender());
      m->set_suspect_after(3);
      m->enable_reconciliation(core::RetryPolicy::every_tick());
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  core::SendFn sender() {
    return [this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    };
  }

  void step() {
    for (auto& [id, m] : members) m->tick();
    leader->tick();
    net.run();
  }

  // Joins both members, cuts the victim off, queues `ops` offline sends and
  // waits for the expel-onto-parole. Returns false on a setup stall.
  bool setup(int ops) {
    for (auto& [id, m] : members) {
      if (!m->join().ok()) return false;
      net.run();
    }
    injector.partition({"victim"});
    auto& victim = *members["victim"];
    for (int i = 0; i < 50 && !victim.disconnected(); ++i) step();
    if (!victim.disconnected()) return false;
    const Bytes payload(64, 0x7E);
    for (int i = 0; i < ops; ++i)
      if (!victim.send_data(payload).ok()) return false;
    leader->probe_liveness();
    net.run();
    for (int i = 0; i < 50 && leader->is_member("victim"); ++i) step();
    return leader->on_parole("victim");
  }

  // Ticks from heal to the victim's fast rejoin; returns virtual steps.
  std::uint64_t heal_and_settle() {
    injector.heal();
    auto& victim = *members["victim"];
    std::uint64_t steps = 0;
    while (steps < 2'000 &&
           !(victim.connected() && !victim.disconnected())) {
      step();
      ++steps;
    }
    return steps;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  net::FaultInjector injector;
  std::unique_ptr<core::Leader> leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

// The whole heal: offer, admit, stop-and-wait replay of N queued ops,
// verdict, fast rejoin under the current key. steps_to_heal is the
// deterministic tick count from the moment the link returns.
void BM_PartitionHealCycle(benchmark::State& state) {
  std::uint64_t seed = 500, total_steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HealWorld w(seed++);
    const bool ready = w.setup(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    if (!ready) {
      state.SkipWithError("heal setup stalled");
      break;
    }
    const std::uint64_t steps = w.heal_and_settle();
    total_steps += steps;
    benchmark::DoNotOptimize(steps);
  }
  state.counters["steps_to_heal"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PartitionHealCycle)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("partition_heal")
