// E12 — protocol performance (the implementation dimension the paper's
// venue expects): authentication handshake cost, admin round-trip cost,
// rekey latency vs group size, data-plane relay throughput vs payload size.
// Run: build/bench/bench_protocol_perf
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/leader.h"
#include "core/member.h"
#include "core/member_session.h"
#include "adversary/storm.h"
#include "net/sim_network.h"
#include "util/rng.h"
#include "wire/seal.h"

namespace {

using namespace enclaves;

struct World {
  explicit World(core::RekeyPolicy policy)
      : rng(42), leader(core::LeaderConfig{"L", policy}, rng) {
    leader.set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader.handle(e); });
  }

  core::Member& add_and_join(const std::string& id) {
    auto pa = crypto::LongTermKey::random(rng);
    (void)leader.register_member(id, pa);
    auto m = std::make_unique<core::Member>(id, "L", pa, rng);
    m->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    auto* raw = m.get();
    net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
    members[id] = std::move(m);
    (void)raw->join();
    net.run();
    return *raw;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  core::Leader leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

// Full 3-message authentication handshake (crypto + FSM, no queueing).
void BM_AuthHandshake(benchmark::State& state) {
  DeterministicRng rng(7);
  auto pa = crypto::LongTermKey::random(rng);
  for (auto _ : state) {
    core::MemberSession member("alice", "L", pa, rng);
    core::LeaderSession leader("L", "alice", pa, rng);
    auto init = member.start_join();
    auto dist = leader.handle(*init);
    auto ack = member.handle(*dist->reply);
    auto done = leader.handle(*ack->reply);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_AuthHandshake);

// One AdminMsg + Ack exchange (the unit of all group management).
void BM_AdminRoundTrip(benchmark::State& state) {
  DeterministicRng rng(8);
  auto pa = crypto::LongTermKey::random(rng);
  core::MemberSession member("alice", "L", pa, rng);
  core::LeaderSession leader("L", "alice", pa, rng);
  auto init = member.start_join();
  auto dist = leader.handle(*init);
  auto ack = member.handle(*dist->reply);
  (void)leader.handle(*ack->reply);

  for (auto _ : state) {
    auto admin = leader.submit_admin(wire::Notice{"tick"});
    auto out = member.handle(*admin);
    auto done = leader.handle(*out->reply);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_AdminRoundTrip);

// Member join latency (messages + crypto) as a function of existing group
// size: the strict policy rekeys everyone on each join, so cost grows.
void BM_JoinIntoGroupOfN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World w(core::RekeyPolicy::strict());
    for (int i = 0; i < n; ++i) w.add_and_join("m" + std::to_string(i));
    state.ResumeTiming();
    w.add_and_join("newcomer");
  }
}
BENCHMARK(BM_JoinIntoGroupOfN)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Rekey latency vs group size (fresh Kg to every member + acks).
void BM_RekeyGroupOfN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  World w(core::RekeyPolicy::manual());
  for (int i = 0; i < n; ++i) w.add_and_join("m" + std::to_string(i));
  for (auto _ : state) {
    w.leader.rekey();
    w.net.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RekeyGroupOfN)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Data-plane fan-out: one member publishes, leader relays to N-1 others.
void BM_RelayToGroupOfN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  World w(core::RekeyPolicy::manual());
  core::Member* first = nullptr;
  for (int i = 0; i < n; ++i) {
    auto& m = w.add_and_join("m" + std::to_string(i));
    if (!first) first = &m;
  }
  Bytes payload = w.rng.bytes(256);
  for (auto _ : state) {
    (void)first->send_data(payload);
    w.net.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (n - 1));
}
BENCHMARK(BM_RelayToGroupOfN)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// Relay throughput vs payload size in a 8-member group.
void BM_RelayPayloadSize(benchmark::State& state) {
  World w(core::RekeyPolicy::manual());
  core::Member* first = nullptr;
  for (int i = 0; i < 8; ++i) {
    auto& m = w.add_and_join("m" + std::to_string(i));
    if (!first) first = &m;
  }
  Bytes payload = w.rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)first->send_data(payload);
    w.net.run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 7);
}
BENCHMARK(BM_RelayPayloadSize)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

// Cost of REJECTING adversarial junk at a connected member — resilience of
// the non-faulty participant under a message storm (Section 3.1).
void BM_RejectForgedAdminStorm(benchmark::State& state) {
  DeterministicRng rng(9);
  auto pa = crypto::LongTermKey::random(rng);
  core::MemberSession member("alice", "L", pa, rng);
  core::LeaderSession leader("L", "alice", pa, rng);
  auto init = member.start_join();
  auto dist = leader.handle(*init);
  auto ack = member.handle(*dist->reply);
  (void)leader.handle(*ack->reply);

  Bytes junk_key = rng.bytes(32);
  auto forged = wire::make_sealed(crypto::default_aead(), junk_key, rng,
                                  wire::Label::AdminMsg, "L", "alice",
                                  rng.bytes(128));
  for (auto _ : state) {
    auto r = member.handle(forged);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RejectForgedAdminStorm);

// Whole-system storm absorption: a randomized Dolev-Yao storm (replays,
// redirects, mutations, fabrications) against an established 4-member
// group. Measures the cost of shrugging off one hostile packet end-to-end;
// aborts if the group state is ever perturbed.
void BM_StormAbsorption(benchmark::State& state) {
  World w(core::RekeyPolicy::manual());
  for (int i = 0; i < 4; ++i) w.add_and_join("m" + std::to_string(i));
  const auto members_before = w.leader.members();
  const auto epoch_before = w.leader.epoch();

  adversary::StormAttacker storm(w.net, w.rng,
                                 {"L", "m0", "m1", "m2", "m3"});
  for (auto _ : state) {
    storm.storm(64);
    w.net.run();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(storm.stats().total()));
  if (w.leader.members() != members_before ||
      w.leader.epoch() != epoch_before) {
    state.SkipWithError("storm perturbed the group state!");
  }
}
BENCHMARK(BM_StormAbsorption)->Unit(benchmark::kMicrosecond);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("protocol_perf")
