// E13 — crypto substrate cost: throughput of every primitive the protocol
// rests on, for both AEAD providers. Run: build/bench/bench_crypto
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/pbkdf2.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "util/rng.h"

namespace {

using namespace enclaves;
using namespace enclaves::crypto;

Bytes make_data(std::size_t n) {
  DeterministicRng rng(1);
  return rng.bytes(n);
}

void BM_Sha256(benchmark::State& state) {
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto d = Sha256::hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = make_data(32);
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto t = HmacSha256::mac(key, data);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Hkdf(benchmark::State& state) {
  Bytes ikm = make_data(32), salt = make_data(16), info = make_data(16);
  for (auto _ : state) {
    Bytes okm = hkdf(salt, ikm, info, 64);
    benchmark::DoNotOptimize(okm);
  }
}
BENCHMARK(BM_Hkdf);

void BM_Pbkdf2(benchmark::State& state) {
  Bytes pw = make_data(16), salt = make_data(16);
  const auto iters = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Bytes dk = pbkdf2_hmac_sha256(pw, salt, iters, 32);
    benchmark::DoNotOptimize(dk);
  }
}
BENCHMARK(BM_Pbkdf2)->Arg(16)->Arg(1024)->Arg(4096);

void BM_AeadSeal(benchmark::State& state) {
  const Aead& aead = state.range(0) == 0 ? chacha20poly1305() : aes256gcm();
  Bytes key = make_data(32), nonce = make_data(12), aad = make_data(32);
  Bytes msg = make_data(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    Bytes ct = aead.seal(key, nonce, aad, msg);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(aead.name());
}
BENCHMARK(BM_AeadSeal)
    ->Args({0, 64})->Args({0, 1024})->Args({0, 16384})->Args({0, 1 << 20})
    ->Args({1, 64})->Args({1, 1024})->Args({1, 16384})->Args({1, 1 << 20});

void BM_AeadOpen(benchmark::State& state) {
  const Aead& aead = state.range(0) == 0 ? chacha20poly1305() : aes256gcm();
  Bytes key = make_data(32), nonce = make_data(12), aad = make_data(32);
  Bytes ct =
      aead.seal(key, nonce, aad,
                make_data(static_cast<std::size_t>(state.range(1))));
  for (auto _ : state) {
    auto p = aead.open(key, nonce, aad, ct);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(aead.name());
}
BENCHMARK(BM_AeadOpen)
    ->Args({0, 64})->Args({0, 1024})->Args({0, 16384})
    ->Args({1, 64})->Args({1, 1024})->Args({1, 16384});

void BM_X25519KeyGen(benchmark::State& state) {
  for (auto _ : state) {
    auto kp = X25519KeyPair::generate();
    benchmark::DoNotOptimize(kp);
  }
}
BENCHMARK(BM_X25519KeyGen);

void BM_X25519DerivePa(benchmark::State& state) {
  auto a = X25519KeyPair::generate();
  auto b = X25519KeyPair::generate();
  for (auto _ : state) {
    auto pa = derive_long_term_key_x25519(a->private_key, b->public_key,
                                          "alice", "L");
    benchmark::DoNotOptimize(pa);
  }
}
BENCHMARK(BM_X25519DerivePa);

void BM_AeadRejectForgery(benchmark::State& state) {
  // Cost of REJECTING a forged message — the hot path under attack.
  const Aead& aead = chacha20poly1305();
  Bytes key = make_data(32), nonce = make_data(12);
  Bytes ct = aead.seal(key, nonce, {}, make_data(1024));
  ct[5] ^= 1;
  for (auto _ : state) {
    auto p = aead.open(key, nonce, {}, ct);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AeadRejectForgery);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("crypto")
