// Costs of the robustness layer: fault-injection overhead per packet,
// convergence time under faults for the two retransmission schedules, and
// crash-recovery round-trips (snapshot serialize/restore, full
// crash-restart-rejoin cycles).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/leader.h"
#include "core/member.h"
#include "core/registry.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "util/rng.h"

namespace {

using namespace enclaves;

// One packet through the injector's decision path (the per-send tax a
// chaos-enabled SimNetwork pays).
void BM_FaultInjectorDecide(benchmark::State& state) {
  net::FaultPlan plan;
  plan.faults = {20, 10, 10, 4};
  net::FaultInjector inj(plan, 42);
  net::Packet p{0, "b",
                wire::Envelope{wire::Label::GroupData, "a", "b",
                               to_bytes("payload")}};
  for (auto _ : state) {
    p.seq++;
    benchmark::DoNotOptimize(inj.decide(p));
  }
}
BENCHMARK(BM_FaultInjectorDecide);

struct BenchWorld {
  BenchWorld(std::uint64_t seed, std::uint32_t drop_pct,
             core::RetryPolicy policy)
      : rng(seed) {
    net::FaultPlan plan;
    plan.faults.drop_pct = drop_pct;
    injector = std::make_unique<net::FaultInjector>(plan, seed ^ 0xFA17);
    net.set_tap(injector->tap());
    core::LeaderConfig config;
    config.retry = policy;
    leader = std::make_unique<core::Leader>(config, rng);
    leader->set_send([this](const std::string& to, wire::Envelope e) {
      net.send(to, std::move(e));
    });
    net.attach("L", [this](const wire::Envelope& e) { leader->handle(e); });
    for (int i = 0; i < 4; ++i) {
      const std::string id = "m" + std::to_string(i);
      auto pa = crypto::LongTermKey::random(rng);
      (void)leader->register_member(id, pa);
      auto m = std::make_unique<core::Member>(id, "L", pa, rng);
      m->set_send([this](const std::string& to, wire::Envelope e) {
        net.send(to, std::move(e));
      });
      m->set_retry_policy(policy);
      auto* raw = m.get();
      net.attach(id, [raw](const wire::Envelope& e) { raw->handle(e); });
      members[id] = std::move(m);
    }
  }

  bool converged() const {
    for (const auto& [id, m] : members) {
      if (!m->connected() || m->epoch() != leader->epoch()) return false;
      const auto* s = leader->session(id);
      if (!s || s->state() != core::LeaderSession::State::connected ||
          s->queue_depth() != 0)
        return false;
    }
    return leader->member_count() == members.size();
  }

  // Steps until all four members converge; also counts packets spent.
  std::uint64_t join_all() {
    for (auto& [id, m] : members) (void)m->join();
    std::uint64_t steps = 0;
    while (!converged() && steps < 10'000) {
      net.run();
      leader->tick();
      for (auto& [id, m] : members) m->tick();
      net.run();
      ++steps;
    }
    return steps;
  }

  net::SimNetwork net;
  DeterministicRng rng;
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<core::Leader> leader;
  std::map<std::string, std::unique_ptr<core::Member>> members;
};

// Full 4-member join to convergence under loss. arg0 = drop percent,
// arg1 = 0 (retransmit every tick) or 1 (exponential backoff, cap 8).
// Compare packets_per_join across the two schedules: backoff trades a few
// extra steps for a much quieter wire.
void BM_ChaosJoinConvergence(benchmark::State& state) {
  const auto drop = static_cast<std::uint32_t>(state.range(0));
  const bool backoff = state.range(1) != 0;
  std::uint64_t seed = 1, total_steps = 0, total_packets = 0;
  for (auto _ : state) {
    BenchWorld w(seed++, drop,
                 backoff ? core::RetryPolicy::exponential(1, 8, 2)
                         : core::RetryPolicy::every_tick());
    total_steps += w.join_all();
    total_packets += w.net.packets_sent();
    benchmark::DoNotOptimize(w.converged());
  }
  state.counters["steps_per_join"] = benchmark::Counter(
      static_cast<double>(total_steps), benchmark::Counter::kAvgIterations);
  state.counters["packets_per_join"] = benchmark::Counter(
      static_cast<double>(total_packets), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ChaosJoinConvergence)
    ->Args({0, 0})
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({30, 0})
    ->Args({30, 1});

// Snapshot persistence round-trip, arg = registered members.
void BM_LeaderSnapshotRoundTrip(benchmark::State& state) {
  DeterministicRng rng(7);
  core::Registry reg;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)reg.add(core::Credential{"m" + std::to_string(i),
                                   crypto::LongTermKey::random(rng), "pw"});
  }
  core::LeaderSnapshot snap{reg, 1000};
  const Bytes key = to_bytes("bench-storage-key");
  for (auto _ : state) {
    Bytes blob = snap.serialize(key);
    auto back = core::LeaderSnapshot::deserialize(blob, key);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_LeaderSnapshotRoundTrip)->Arg(4)->Arg(64)->Arg(512);

// Whole crash-recovery cycle: snapshot, kill the leader, restore a fresh
// one from the blob, members re-authenticate until the group re-forms.
void BM_CrashRestartRecovery(benchmark::State& state) {
  std::uint64_t seed = 100;
  for (auto _ : state) {
    state.PauseTiming();
    BenchWorld w(seed++, 0, core::RetryPolicy::every_tick());
    w.join_all();
    for (auto& [id, m] : w.members) {
      m->set_suspect_after(4);
      m->enable_auto_rejoin(core::RetryPolicy::every_tick());
    }
    const Bytes key = to_bytes("bench-storage-key");
    state.ResumeTiming();

    Bytes blob = w.leader->snapshot().serialize(key);
    w.leader.reset();
    w.net.detach("L");
    for (int t = 0; t < 6; ++t) {  // downtime: members start suspecting
      w.net.run();
      for (auto& [id, m] : w.members) m->tick();
    }
    auto snap = core::LeaderSnapshot::deserialize(blob, key);
    core::LeaderConfig config;
    w.leader = std::make_unique<core::Leader>(config, w.rng);
    w.leader->set_send([&w](const std::string& to, wire::Envelope e) {
      w.net.send(to, std::move(e));
    });
    snap->install(*w.leader);
    w.net.attach("L",
                 [&w](const wire::Envelope& e) { w.leader->handle(e); });
    std::uint64_t steps = 0;
    while (!w.converged() && steps < 1000) {
      w.net.run();
      w.leader->tick();
      for (auto& [id, m] : w.members) m->tick();
      w.net.run();
      ++steps;
    }
    benchmark::DoNotOptimize(steps);
  }
}
BENCHMARK(BM_CrashRestartRecovery);

}  // namespace

#include "bench_json.h"

ENCLAVES_BENCH_JSON_MAIN("chaos_recovery")
