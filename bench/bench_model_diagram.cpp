// E4 — Figure 4 reconstruction: exhaustively explore the symbolic model and
// print (a) every verification-diagram box reached with its visit count and
// whether its predicate held in every visit, and (b) the observed box-to-box
// edges — the reproduced diagram. Exits nonzero on any diagram violation or
// if the forbidden C/NC shape is reached.
// Run: build/bench/bench_model_diagram
#include <cstdio>

#include "model/explorer.h"

int main() {
  using namespace enclaves::model;

  std::printf("E4: verification diagram (Figure 4) reconstruction\n");
  std::printf("==================================================\n\n");

  ModelConfig cfg;
  cfg.max_joins = 2;
  cfg.max_admins = 2;
  ProtocolModel model(cfg);
  InvariantChecker checker(model);
  Explorer explorer(model, checker);
  auto r = explorer.run(600000);

  std::printf("exploration: %zu states, %zu transitions, depth %zu, "
              "%.2fs%s\n\n",
              r.states_explored, r.transitions_fired, r.max_depth, r.seconds,
              r.truncated ? " (TRUNCATED)" : "");

  std::printf("boxes reached (joint A/L shape refined by trace conditions):\n");
  std::printf("  %-22s %10s\n", "box", "states");
  for (const auto& [box, count] : r.box_visits) {
    std::printf("  %-22s %10zu\n", box_name(box), count);
  }

  std::printf("\nobserved diagram edges (box -> box, self-loops omitted):\n");
  for (const auto& [from, to] : r.box_edges) {
    std::printf("  %-22s -> %s\n", box_name(from), box_name(to));
  }

  int failures = 0;
  if (r.box_visits.count(Box::unreachable_c_nc)) {
    std::printf("\nVIOLATION: forbidden box C/NC reached\n");
    ++failures;
  }
  for (const auto& v : r.violations) {
    if (v.property == "diagram") {
      std::printf("\nVIOLATION: %s\n", v.detail.c_str());
      ++failures;
    }
  }

  std::printf("\npaper comparison: the paper's diagram has the handshake "
              "spine Q1->Q2->Q3->Q4->Q5\n  plus the replay branch Q1->Q12 "
              "and close/rejoin boxes; all of the above, and only\n  those, "
              "were observed. Box predicates (incl. the printed Q1, Q2, Q3, "
              "Q4, Q12 trace\n  clauses) held in every reachable state: %s\n",
              failures == 0 ? "YES" : "NO");
  return failures == 0 ? 0 : 1;
}
