// E5/E6/E7 — the paper's verified properties, checked exhaustively:
//   E5  secrecy of the long-term key Pa           (Section 5.1)
//   E6  secrecy of in-use session keys + Lemma 1  (Section 5.2)
//   E7  ordering/no-duplication (rcv prefix snd), proper authentication,
//       key/nonce agreement                        (Section 5.4)
// Prints a per-property verdict table over several exploration bounds.
// Exits nonzero if any property fails anywhere.
// Run: build/bench/bench_model_secrecy
#include <cstdio>
#include <map>
#include <string>

#include "model/explorer.h"

int main() {
  using namespace enclaves::model;

  std::printf("E5/E6/E7: exhaustive check of the Section 5 properties\n");
  std::printf("======================================================\n\n");

  const char* properties[] = {"pa-secrecy",     "ka-secrecy",
                              "lemma1",         "coideal",
                              "agreement",      "usr-key-in-use",
                              "rcv-prefix-snd", "auth-prefix",
                              "key-independence"};

  struct Bound {
    int members, joins, admins;
  };
  const Bound bounds[] = {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {1, 2, 2},
                          {2, 1, 1}, {2, 1, 2}};

  int total_failures = 0;
  std::printf("  %-8s %-8s %-8s %10s %8s   verdict\n", "members", "joins",
              "admins", "states", "time");
  for (const Bound& b : bounds) {
    ModelConfig cfg;
    cfg.members = b.members;
    cfg.max_joins = b.joins;
    cfg.max_admins = b.admins;
    ProtocolModel model(cfg);
    InvariantChecker checker(model);
    Explorer explorer(model, checker);
    auto r = explorer.run(600000);

    std::map<std::string, int> fails;
    for (const auto& v : r.violations) ++fails[v.property];

    bool ok = true;
    for (const char* p : properties) ok &= (fails[p] == 0);
    if (!ok) ++total_failures;
    std::printf("  %-8d %-8d %-8d %10zu %7.2fs   %s%s\n", b.members,
                b.joins, b.admins, r.states_explored, r.seconds,
                ok ? "ALL HOLD" : "VIOLATED",
                r.truncated ? " (truncated)" : "");
    if (!ok) {
      for (const auto& [prop, n] : fails) {
        if (n > 0) std::printf("      %s: %d violations\n", prop.c_str(), n);
      }
      for (const auto& step : r.counterexample)
        std::printf("      -> %s\n", step.c_str());
    }
  }

  std::printf("\nper-property verdicts at the largest bound (2 joins, "
              "2 admins — includes Oops'd\nold session keys and full-session "
              "replay by the intruder):\n");
  {
    ModelConfig cfg;
    cfg.max_joins = 2;
    cfg.max_admins = 2;
    ProtocolModel model(cfg);
    InvariantChecker checker(model);
    Explorer explorer(model, checker);
    auto r = explorer.run(600000);
    std::map<std::string, int> fails;
    for (const auto& v : r.violations) ++fails[v.property];
    for (const char* p : properties) {
      std::printf("  %-16s (paper: proved in PVS)  measured: %s\n", p,
                  fails[p] == 0 ? "holds in every reachable state"
                                : "VIOLATED");
      if (fails[p] != 0) ++total_failures;
    }
  }

  std::printf("\nRESULT: %s\n",
              total_failures == 0
                  ? "matches the paper — all Section 5 properties hold"
                  : "MISMATCH: property violations found");
  return total_failures == 0 ? 0 : 1;
}
