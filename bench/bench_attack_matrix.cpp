// E8–E11 — the attack matrix: every Section 2.3 attack executed against the
// legacy baseline (expected: attacker succeeds) and against the improved
// intrusion-tolerant protocol (expected: attacker blocked).
//
// Prints the matrix and per-attack narration; exits nonzero if any outcome
// deviates from the paper's claims. Run: build/bench/bench_attack_matrix
#include <cstdio>
#include <map>
#include <string>

#include "adversary/attacks.h"

int main() {
  using namespace enclaves::adversary;

  std::printf("E8-E11: Section 2.3 attack reproduction\n");
  std::printf("=======================================\n\n");

  int failures = 0;
  std::map<std::string, int> seeds_run;
  // Several seeds: outcomes must be deterministic per protocol, not luck.
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    auto reports = run_all_attacks(seed);
    for (const auto& r : reports) {
      // Expected outcomes (see DESIGN.md / EXPERIMENTS.md):
      //   legacy  : session-hijack blocked, everything else succeeds
      //   improved: everything blocked
      bool expect_success =
          (r.protocol == "legacy" && r.attack != "session-hijack");
      if (r.attacker_succeeded != expect_success) {
        std::printf("UNEXPECTED: %s vs %s (seed %llu): %s\n",
                    r.attack.c_str(), r.protocol.c_str(),
                    static_cast<unsigned long long>(seed), r.detail.c_str());
        ++failures;
      }
      ++seeds_run[r.attack];
    }
  }

  auto reports = run_all_attacks(2001);  // the DSN'01 seed, for the table
  std::printf("%s\n", format_attack_matrix(reports).c_str());
  std::printf("Narration (seed 2001):\n");
  for (const auto& r : reports) {
    std::printf("  [%-19s][%-18s] %s\n", r.attack.c_str(), r.protocol.c_str(),
                r.detail.c_str());
  }

  std::printf("\n%zu attacks x 2 protocols x 4 seeds; deviations: %d\n",
              seeds_run.size(), failures);
  if (failures == 0) {
    std::printf("RESULT: matches the paper — legacy protocol falls to every "
                "Section 2.3 attack;\n        the intrusion-tolerant "
                "protocol blocks all of them.\n");
  }
  return failures == 0 ? 0 : 1;
}
