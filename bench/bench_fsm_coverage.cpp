// E2/E3 — state-machine coverage: drive the concrete MemberSession (Fig. 2)
// and LeaderSession (Fig. 3) through every transition and every rejection
// class, and print the observed transition matrices next to the figures'
// expected structure. Exits nonzero if any expected transition is missing.
// Run: build/bench/bench_fsm_coverage
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/leader_session.h"
#include "core/member_session.h"
#include "util/rng.h"
#include "wire/seal.h"

namespace {

using namespace enclaves;
using core::LeaderSession;
using core::MemberSession;

std::set<std::string> g_member_transitions;
std::set<std::string> g_leader_transitions;

template <typename Session>
struct Watch {
  Session& s;
  std::string before;
  std::set<std::string>& sink;
  const char* event;
  Watch(Session& session, std::set<std::string>& sink_, const char* event_)
      : s(session), before(to_string(session.state())), sink(sink_),
        event(event_) {}
  ~Watch() {
    std::string after = to_string(s.state());
    sink.insert(before + " --" + event + "--> " + after);
  }
};

void drive_happy_path_and_attacks() {
  DeterministicRng rng(3);
  auto pa = crypto::LongTermKey::random(rng);
  MemberSession member("alice", "L", pa, rng);
  LeaderSession leader("L", "alice", pa, rng);

  // Stash for replays.
  std::optional<wire::Envelope> old_init, old_admin;

  for (int session = 0; session < 2; ++session) {
    wire::Envelope init_env = [&] {
      Watch w(member, g_member_transitions, "join");
      return *member.start_join();
    }();
    if (!old_init) old_init = init_env;

    wire::Envelope dist_env = [&] {
      Watch w(leader, g_leader_transitions, "AuthInitReq");
      return *leader.handle(init_env)->reply;
    }();

    wire::Envelope ack_env = [&] {
      Watch w(member, g_member_transitions, "AuthKeyDist");
      return *member.handle(dist_env)->reply;
    }();

    {
      Watch w(leader, g_leader_transitions, "AuthAckKey");
      (void)leader.handle(ack_env);
    }

    // Two admin exchanges.
    for (int i = 0; i < 2; ++i) {
      wire::Envelope admin_env = [&] {
        Watch w(leader, g_leader_transitions, "submit_admin");
        return *leader.submit_admin(wire::Notice{"n" + std::to_string(i)});
      }();
      if (!old_admin) old_admin = admin_env;
      wire::Envelope ack2 = [&] {
        Watch w(member, g_member_transitions, "AdminMsg");
        return *member.handle(admin_env)->reply;
      }();
      {
        Watch w(leader, g_leader_transitions, "Ack");
        (void)leader.handle(ack2);
      }
    }

    // Adversarial inputs that must all be REJECTED (self-loops).
    {
      Watch w(member, g_member_transitions, "reject:replayed-AdminMsg");
      (void)member.handle(*old_admin);
    }
    {
      Bytes junk = rng.bytes(32);
      auto forged = wire::make_sealed(crypto::default_aead(), junk, rng,
                                      wire::Label::AdminMsg, "L", "alice",
                                      rng.bytes(64));
      Watch w(member, g_member_transitions, "reject:forged-AdminMsg");
      (void)member.handle(forged);
    }
    {
      Watch w(leader, g_leader_transitions, "reject:replayed-AuthInitReq");
      (void)leader.handle(*old_init);
    }

    // Close.
    wire::Envelope close_env = [&] {
      Watch w(member, g_member_transitions, "leave");
      return *member.request_close();
    }();
    {
      Watch w(leader, g_leader_transitions, "ReqClose");
      (void)leader.handle(close_env);
    }
  }

  // Ghost handshake: replayed AuthInitReq against a closed leader session
  // (the paper's Q12 situation).
  {
    Watch w(leader, g_leader_transitions, "AuthInitReq(replay->ghost)");
    (void)leader.handle(*old_init);
  }
  // ReqClose while waiting for an admin ack (close crossing an admin).
  {
    DeterministicRng rng2(4);
    auto pa2 = crypto::LongTermKey::random(rng2);
    MemberSession m2("bob", "L", pa2, rng2);
    LeaderSession l2("L", "bob", pa2, rng2);
    auto init = m2.start_join();
    auto dist = l2.handle(*init);
    auto ack = m2.handle(*dist->reply);
    (void)l2.handle(*ack->reply);
    (void)l2.submit_admin(wire::Notice{"in flight"});
    auto close = [&] {
      Watch w(m2, g_member_transitions, "leave");
      return *m2.request_close();
    }();
    Watch w(l2, g_leader_transitions, "ReqClose(during-admin)");
    (void)l2.handle(close);
  }
}

int print_and_check(const char* title, const std::set<std::string>& got,
                    const std::set<std::string>& required) {
  std::printf("%s\n", title);
  for (const auto& t : got) std::printf("  %s\n", t.c_str());
  int missing = 0;
  for (const auto& r : required) {
    if (!got.count(r)) {
      std::printf("  MISSING EXPECTED TRANSITION: %s\n", r.c_str());
      ++missing;
    }
  }
  std::printf("\n");
  return missing;
}

}  // namespace

int main() {
  std::printf("E2/E3: Figure 2 and Figure 3 transition coverage\n");
  std::printf("================================================\n\n");
  drive_happy_path_and_attacks();

  const std::set<std::string> member_required = {
      "NotConnected --join--> WaitingForKey",
      "WaitingForKey --AuthKeyDist--> Connected",
      "Connected --AdminMsg--> Connected",
      "Connected --leave--> NotConnected",
      "Connected --reject:replayed-AdminMsg--> Connected",
      "Connected --reject:forged-AdminMsg--> Connected",
  };
  const std::set<std::string> leader_required = {
      "NotConnected --AuthInitReq--> WaitingForKeyAck",
      "WaitingForKeyAck --AuthAckKey--> Connected",
      "Connected --submit_admin--> WaitingForAck",
      "WaitingForAck --Ack--> Connected",
      "Connected --ReqClose--> NotConnected",
      "WaitingForAck --ReqClose(during-admin)--> NotConnected",
      "NotConnected --AuthInitReq(replay->ghost)--> WaitingForKeyAck",
      "Connected --reject:replayed-AuthInitReq--> Connected",
  };

  int missing = 0;
  missing += print_and_check("Member FSM (Figure 2) transitions observed:",
                             g_member_transitions, member_required);
  missing += print_and_check("Leader FSM (Figure 3) transitions observed:",
                             g_leader_transitions, leader_required);

  if (missing == 0) {
    std::printf("RESULT: all Figure 2 / Figure 3 transitions exercised; "
                "adversarial inputs are self-loops.\n");
  }
  return missing == 0 ? 0 : 1;
}
