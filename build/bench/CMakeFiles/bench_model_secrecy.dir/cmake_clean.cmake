file(REMOVE_RECURSE
  "CMakeFiles/bench_model_secrecy.dir/bench_model_secrecy.cpp.o"
  "CMakeFiles/bench_model_secrecy.dir/bench_model_secrecy.cpp.o.d"
  "bench_model_secrecy"
  "bench_model_secrecy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_secrecy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
