# Empty dependencies file for bench_model_secrecy.
# This may be replaced when dependencies are built.
