# Empty dependencies file for bench_fsm_coverage.
# This may be replaced when dependencies are built.
