file(REMOVE_RECURSE
  "CMakeFiles/bench_fsm_coverage.dir/bench_fsm_coverage.cpp.o"
  "CMakeFiles/bench_fsm_coverage.dir/bench_fsm_coverage.cpp.o.d"
  "bench_fsm_coverage"
  "bench_fsm_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fsm_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
