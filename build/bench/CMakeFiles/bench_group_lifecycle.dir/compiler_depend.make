# Empty compiler generated dependencies file for bench_group_lifecycle.
# This may be replaced when dependencies are built.
