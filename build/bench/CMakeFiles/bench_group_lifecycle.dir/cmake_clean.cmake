file(REMOVE_RECURSE
  "CMakeFiles/bench_group_lifecycle.dir/bench_group_lifecycle.cpp.o"
  "CMakeFiles/bench_group_lifecycle.dir/bench_group_lifecycle.cpp.o.d"
  "bench_group_lifecycle"
  "bench_group_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
