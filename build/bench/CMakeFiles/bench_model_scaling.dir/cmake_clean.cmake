file(REMOVE_RECURSE
  "CMakeFiles/bench_model_scaling.dir/bench_model_scaling.cpp.o"
  "CMakeFiles/bench_model_scaling.dir/bench_model_scaling.cpp.o.d"
  "bench_model_scaling"
  "bench_model_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
