# Empty compiler generated dependencies file for bench_model_diagram.
# This may be replaced when dependencies are built.
