file(REMOVE_RECURSE
  "CMakeFiles/bench_model_diagram.dir/bench_model_diagram.cpp.o"
  "CMakeFiles/bench_model_diagram.dir/bench_model_diagram.cpp.o.d"
  "bench_model_diagram"
  "bench_model_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
