file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_perf.dir/bench_protocol_perf.cpp.o"
  "CMakeFiles/bench_protocol_perf.dir/bench_protocol_perf.cpp.o.d"
  "bench_protocol_perf"
  "bench_protocol_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
