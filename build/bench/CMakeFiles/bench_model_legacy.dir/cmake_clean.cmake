file(REMOVE_RECURSE
  "CMakeFiles/bench_model_legacy.dir/bench_model_legacy.cpp.o"
  "CMakeFiles/bench_model_legacy.dir/bench_model_legacy.cpp.o.d"
  "bench_model_legacy"
  "bench_model_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
