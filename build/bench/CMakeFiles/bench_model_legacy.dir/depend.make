# Empty dependencies file for bench_model_legacy.
# This may be replaced when dependencies are built.
