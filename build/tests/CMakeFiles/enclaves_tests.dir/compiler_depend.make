# Empty compiler generated dependencies file for enclaves_tests.
# This may be replaced when dependencies are built.
