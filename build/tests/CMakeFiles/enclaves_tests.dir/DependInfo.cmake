
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aead_provider_protocol_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/aead_provider_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/aead_provider_protocol_test.cpp.o.d"
  "/root/repo/tests/app_over_tcp_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/app_over_tcp_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/app_over_tcp_test.cpp.o.d"
  "/root/repo/tests/attacks_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/attacks_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/attacks_test.cpp.o.d"
  "/root/repo/tests/codec_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/codec_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/codec_test.cpp.o.d"
  "/root/repo/tests/conformance_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/conformance_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/conformance_test.cpp.o.d"
  "/root/repo/tests/credential_rotation_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/credential_rotation_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/credential_rotation_test.cpp.o.d"
  "/root/repo/tests/crypto_aead_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/crypto_aead_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/crypto_aead_test.cpp.o.d"
  "/root/repo/tests/crypto_hmac_hkdf_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/crypto_hmac_hkdf_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/crypto_hmac_hkdf_test.cpp.o.d"
  "/root/repo/tests/crypto_openssl_cross_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/crypto_openssl_cross_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/crypto_openssl_cross_test.cpp.o.d"
  "/root/repo/tests/crypto_sha256_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/crypto_sha256_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/crypto_sha256_test.cpp.o.d"
  "/root/repo/tests/file_drop_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/file_drop_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/file_drop_test.cpp.o.d"
  "/root/repo/tests/fuzzish_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/fuzzish_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/fuzzish_test.cpp.o.d"
  "/root/repo/tests/group_chat_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/group_chat_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/group_chat_test.cpp.o.d"
  "/root/repo/tests/group_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/group_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/group_test.cpp.o.d"
  "/root/repo/tests/leader_session_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/leader_session_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/leader_session_test.cpp.o.d"
  "/root/repo/tests/legacy_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/legacy_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/legacy_test.cpp.o.d"
  "/root/repo/tests/lossy_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/lossy_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/lossy_test.cpp.o.d"
  "/root/repo/tests/member_session_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/member_session_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/member_session_test.cpp.o.d"
  "/root/repo/tests/model_closure_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/model_closure_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/model_closure_test.cpp.o.d"
  "/root/repo/tests/model_explore_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/model_explore_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/model_explore_test.cpp.o.d"
  "/root/repo/tests/model_field_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/model_field_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/model_field_test.cpp.o.d"
  "/root/repo/tests/model_legacy_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/model_legacy_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/model_legacy_test.cpp.o.d"
  "/root/repo/tests/multi_group_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/multi_group_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/multi_group_test.cpp.o.d"
  "/root/repo/tests/policy_audit_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/policy_audit_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/policy_audit_test.cpp.o.d"
  "/root/repo/tests/recovery_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/recovery_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/seal_frame_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/seal_frame_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/seal_frame_test.cpp.o.d"
  "/root/repo/tests/shared_state_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/shared_state_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/shared_state_test.cpp.o.d"
  "/root/repo/tests/sim_network_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/sim_network_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/sim_network_test.cpp.o.d"
  "/root/repo/tests/stall_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/stall_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/stall_test.cpp.o.d"
  "/root/repo/tests/storm_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/storm_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/storm_test.cpp.o.d"
  "/root/repo/tests/tcp_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/tcp_test.cpp.o.d"
  "/root/repo/tests/trace_chart_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/trace_chart_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/trace_chart_test.cpp.o.d"
  "/root/repo/tests/udp_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/udp_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/udp_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/wire_payload_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/wire_payload_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/wire_payload_test.cpp.o.d"
  "/root/repo/tests/x25519_test.cpp" "tests/CMakeFiles/enclaves_tests.dir/x25519_test.cpp.o" "gcc" "tests/CMakeFiles/enclaves_tests.dir/x25519_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/enclaves_core.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/enclaves_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/enclaves_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/enclaves_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/enclaves_net.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/enclaves_app.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/enclaves_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
