file(REMOVE_RECURSE
  "libenclaves_adversary.a"
)
