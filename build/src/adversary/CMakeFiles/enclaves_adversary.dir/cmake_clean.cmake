file(REMOVE_RECURSE
  "CMakeFiles/enclaves_adversary.dir/attacks.cpp.o"
  "CMakeFiles/enclaves_adversary.dir/attacks.cpp.o.d"
  "CMakeFiles/enclaves_adversary.dir/intruder.cpp.o"
  "CMakeFiles/enclaves_adversary.dir/intruder.cpp.o.d"
  "CMakeFiles/enclaves_adversary.dir/storm.cpp.o"
  "CMakeFiles/enclaves_adversary.dir/storm.cpp.o.d"
  "libenclaves_adversary.a"
  "libenclaves_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
