# Empty compiler generated dependencies file for enclaves_adversary.
# This may be replaced when dependencies are built.
