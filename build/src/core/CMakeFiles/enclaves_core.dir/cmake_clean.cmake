file(REMOVE_RECURSE
  "CMakeFiles/enclaves_core.dir/audit.cpp.o"
  "CMakeFiles/enclaves_core.dir/audit.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/leader.cpp.o"
  "CMakeFiles/enclaves_core.dir/leader.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/leader_session.cpp.o"
  "CMakeFiles/enclaves_core.dir/leader_session.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/member.cpp.o"
  "CMakeFiles/enclaves_core.dir/member.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/member_session.cpp.o"
  "CMakeFiles/enclaves_core.dir/member_session.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/multi_group.cpp.o"
  "CMakeFiles/enclaves_core.dir/multi_group.cpp.o.d"
  "CMakeFiles/enclaves_core.dir/registry.cpp.o"
  "CMakeFiles/enclaves_core.dir/registry.cpp.o.d"
  "libenclaves_core.a"
  "libenclaves_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
