file(REMOVE_RECURSE
  "libenclaves_core.a"
)
