
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/enclaves_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/leader.cpp" "src/core/CMakeFiles/enclaves_core.dir/leader.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/leader.cpp.o.d"
  "/root/repo/src/core/leader_session.cpp" "src/core/CMakeFiles/enclaves_core.dir/leader_session.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/leader_session.cpp.o.d"
  "/root/repo/src/core/member.cpp" "src/core/CMakeFiles/enclaves_core.dir/member.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/member.cpp.o.d"
  "/root/repo/src/core/member_session.cpp" "src/core/CMakeFiles/enclaves_core.dir/member_session.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/member_session.cpp.o.d"
  "/root/repo/src/core/multi_group.cpp" "src/core/CMakeFiles/enclaves_core.dir/multi_group.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/multi_group.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/enclaves_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/enclaves_core.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/enclaves_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
