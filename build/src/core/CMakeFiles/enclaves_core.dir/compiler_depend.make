# Empty compiler generated dependencies file for enclaves_core.
# This may be replaced when dependencies are built.
