# Empty compiler generated dependencies file for enclaves_app.
# This may be replaced when dependencies are built.
