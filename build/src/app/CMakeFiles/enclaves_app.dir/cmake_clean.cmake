file(REMOVE_RECURSE
  "CMakeFiles/enclaves_app.dir/file_drop.cpp.o"
  "CMakeFiles/enclaves_app.dir/file_drop.cpp.o.d"
  "CMakeFiles/enclaves_app.dir/group_chat.cpp.o"
  "CMakeFiles/enclaves_app.dir/group_chat.cpp.o.d"
  "CMakeFiles/enclaves_app.dir/shared_state.cpp.o"
  "CMakeFiles/enclaves_app.dir/shared_state.cpp.o.d"
  "libenclaves_app.a"
  "libenclaves_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
