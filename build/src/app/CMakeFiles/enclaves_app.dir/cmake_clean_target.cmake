file(REMOVE_RECURSE
  "libenclaves_app.a"
)
