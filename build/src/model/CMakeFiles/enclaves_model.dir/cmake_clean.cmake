file(REMOVE_RECURSE
  "CMakeFiles/enclaves_model.dir/closure.cpp.o"
  "CMakeFiles/enclaves_model.dir/closure.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/explorer.cpp.o"
  "CMakeFiles/enclaves_model.dir/explorer.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/field.cpp.o"
  "CMakeFiles/enclaves_model.dir/field.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/invariants.cpp.o"
  "CMakeFiles/enclaves_model.dir/invariants.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/legacy_model.cpp.o"
  "CMakeFiles/enclaves_model.dir/legacy_model.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/protocol_model.cpp.o"
  "CMakeFiles/enclaves_model.dir/protocol_model.cpp.o.d"
  "CMakeFiles/enclaves_model.dir/state.cpp.o"
  "CMakeFiles/enclaves_model.dir/state.cpp.o.d"
  "libenclaves_model.a"
  "libenclaves_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
