# Empty dependencies file for enclaves_model.
# This may be replaced when dependencies are built.
