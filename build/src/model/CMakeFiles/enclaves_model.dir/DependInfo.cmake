
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/closure.cpp" "src/model/CMakeFiles/enclaves_model.dir/closure.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/closure.cpp.o.d"
  "/root/repo/src/model/explorer.cpp" "src/model/CMakeFiles/enclaves_model.dir/explorer.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/explorer.cpp.o.d"
  "/root/repo/src/model/field.cpp" "src/model/CMakeFiles/enclaves_model.dir/field.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/field.cpp.o.d"
  "/root/repo/src/model/invariants.cpp" "src/model/CMakeFiles/enclaves_model.dir/invariants.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/invariants.cpp.o.d"
  "/root/repo/src/model/legacy_model.cpp" "src/model/CMakeFiles/enclaves_model.dir/legacy_model.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/legacy_model.cpp.o.d"
  "/root/repo/src/model/protocol_model.cpp" "src/model/CMakeFiles/enclaves_model.dir/protocol_model.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/protocol_model.cpp.o.d"
  "/root/repo/src/model/state.cpp" "src/model/CMakeFiles/enclaves_model.dir/state.cpp.o" "gcc" "src/model/CMakeFiles/enclaves_model.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
