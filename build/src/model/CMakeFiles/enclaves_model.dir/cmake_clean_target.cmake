file(REMOVE_RECURSE
  "libenclaves_model.a"
)
