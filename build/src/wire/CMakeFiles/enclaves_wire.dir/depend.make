# Empty dependencies file for enclaves_wire.
# This may be replaced when dependencies are built.
