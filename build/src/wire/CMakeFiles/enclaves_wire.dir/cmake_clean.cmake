file(REMOVE_RECURSE
  "CMakeFiles/enclaves_wire.dir/admin_body.cpp.o"
  "CMakeFiles/enclaves_wire.dir/admin_body.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/codec.cpp.o"
  "CMakeFiles/enclaves_wire.dir/codec.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/envelope.cpp.o"
  "CMakeFiles/enclaves_wire.dir/envelope.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/frame.cpp.o"
  "CMakeFiles/enclaves_wire.dir/frame.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/legacy_payloads.cpp.o"
  "CMakeFiles/enclaves_wire.dir/legacy_payloads.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/payloads.cpp.o"
  "CMakeFiles/enclaves_wire.dir/payloads.cpp.o.d"
  "CMakeFiles/enclaves_wire.dir/seal.cpp.o"
  "CMakeFiles/enclaves_wire.dir/seal.cpp.o.d"
  "libenclaves_wire.a"
  "libenclaves_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
