
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/admin_body.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/admin_body.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/admin_body.cpp.o.d"
  "/root/repo/src/wire/codec.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/codec.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/codec.cpp.o.d"
  "/root/repo/src/wire/envelope.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/envelope.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/envelope.cpp.o.d"
  "/root/repo/src/wire/frame.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/frame.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/frame.cpp.o.d"
  "/root/repo/src/wire/legacy_payloads.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/legacy_payloads.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/legacy_payloads.cpp.o.d"
  "/root/repo/src/wire/payloads.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/payloads.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/payloads.cpp.o.d"
  "/root/repo/src/wire/seal.cpp" "src/wire/CMakeFiles/enclaves_wire.dir/seal.cpp.o" "gcc" "src/wire/CMakeFiles/enclaves_wire.dir/seal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
