file(REMOVE_RECURSE
  "libenclaves_wire.a"
)
