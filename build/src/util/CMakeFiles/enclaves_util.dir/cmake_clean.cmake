file(REMOVE_RECURSE
  "CMakeFiles/enclaves_util.dir/bytes.cpp.o"
  "CMakeFiles/enclaves_util.dir/bytes.cpp.o.d"
  "CMakeFiles/enclaves_util.dir/hex.cpp.o"
  "CMakeFiles/enclaves_util.dir/hex.cpp.o.d"
  "CMakeFiles/enclaves_util.dir/logging.cpp.o"
  "CMakeFiles/enclaves_util.dir/logging.cpp.o.d"
  "CMakeFiles/enclaves_util.dir/rng.cpp.o"
  "CMakeFiles/enclaves_util.dir/rng.cpp.o.d"
  "libenclaves_util.a"
  "libenclaves_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
