# Empty dependencies file for enclaves_util.
# This may be replaced when dependencies are built.
