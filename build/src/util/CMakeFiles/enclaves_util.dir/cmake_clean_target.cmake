file(REMOVE_RECURSE
  "libenclaves_util.a"
)
