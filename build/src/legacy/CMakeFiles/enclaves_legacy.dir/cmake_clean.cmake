file(REMOVE_RECURSE
  "CMakeFiles/enclaves_legacy.dir/legacy_leader.cpp.o"
  "CMakeFiles/enclaves_legacy.dir/legacy_leader.cpp.o.d"
  "CMakeFiles/enclaves_legacy.dir/legacy_member.cpp.o"
  "CMakeFiles/enclaves_legacy.dir/legacy_member.cpp.o.d"
  "libenclaves_legacy.a"
  "libenclaves_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
