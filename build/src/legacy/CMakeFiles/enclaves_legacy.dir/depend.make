# Empty dependencies file for enclaves_legacy.
# This may be replaced when dependencies are built.
