
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legacy/legacy_leader.cpp" "src/legacy/CMakeFiles/enclaves_legacy.dir/legacy_leader.cpp.o" "gcc" "src/legacy/CMakeFiles/enclaves_legacy.dir/legacy_leader.cpp.o.d"
  "/root/repo/src/legacy/legacy_member.cpp" "src/legacy/CMakeFiles/enclaves_legacy.dir/legacy_member.cpp.o" "gcc" "src/legacy/CMakeFiles/enclaves_legacy.dir/legacy_member.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/enclaves_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/enclaves_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
