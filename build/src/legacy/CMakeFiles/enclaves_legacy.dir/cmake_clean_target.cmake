file(REMOVE_RECURSE
  "libenclaves_legacy.a"
)
