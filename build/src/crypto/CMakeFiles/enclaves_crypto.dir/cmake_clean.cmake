file(REMOVE_RECURSE
  "CMakeFiles/enclaves_crypto.dir/aes_gcm.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/aes_gcm.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/chacha20poly1305.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/chacha20poly1305.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/ct.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/ct.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/hmac.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/keys.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/password.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/password.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/pbkdf2.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/pbkdf2.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/sha256.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/enclaves_crypto.dir/x25519.cpp.o"
  "CMakeFiles/enclaves_crypto.dir/x25519.cpp.o.d"
  "libenclaves_crypto.a"
  "libenclaves_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
