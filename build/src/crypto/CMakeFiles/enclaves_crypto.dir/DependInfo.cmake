
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes_gcm.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/aes_gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/aes_gcm.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/chacha20poly1305.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/chacha20poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/chacha20poly1305.cpp.o.d"
  "/root/repo/src/crypto/ct.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/ct.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/ct.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/hkdf.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/keys.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/crypto/password.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/password.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/password.cpp.o.d"
  "/root/repo/src/crypto/pbkdf2.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/pbkdf2.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/pbkdf2.cpp.o.d"
  "/root/repo/src/crypto/poly1305.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/poly1305.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/enclaves_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/enclaves_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
