# Empty dependencies file for enclaves_crypto.
# This may be replaced when dependencies are built.
