file(REMOVE_RECURSE
  "libenclaves_crypto.a"
)
