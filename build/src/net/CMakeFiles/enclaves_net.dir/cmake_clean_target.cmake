file(REMOVE_RECURSE
  "libenclaves_net.a"
)
