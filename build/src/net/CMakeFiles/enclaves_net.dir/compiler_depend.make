# Empty compiler generated dependencies file for enclaves_net.
# This may be replaced when dependencies are built.
