file(REMOVE_RECURSE
  "CMakeFiles/enclaves_net.dir/sim_network.cpp.o"
  "CMakeFiles/enclaves_net.dir/sim_network.cpp.o.d"
  "CMakeFiles/enclaves_net.dir/tcp.cpp.o"
  "CMakeFiles/enclaves_net.dir/tcp.cpp.o.d"
  "CMakeFiles/enclaves_net.dir/trace_chart.cpp.o"
  "CMakeFiles/enclaves_net.dir/trace_chart.cpp.o.d"
  "CMakeFiles/enclaves_net.dir/udp.cpp.o"
  "CMakeFiles/enclaves_net.dir/udp.cpp.o.d"
  "libenclaves_net.a"
  "libenclaves_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclaves_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
