
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/sim_network.cpp" "src/net/CMakeFiles/enclaves_net.dir/sim_network.cpp.o" "gcc" "src/net/CMakeFiles/enclaves_net.dir/sim_network.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/enclaves_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/enclaves_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/trace_chart.cpp" "src/net/CMakeFiles/enclaves_net.dir/trace_chart.cpp.o" "gcc" "src/net/CMakeFiles/enclaves_net.dir/trace_chart.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/enclaves_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/enclaves_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/enclaves_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
