# Empty compiler generated dependencies file for presence_board.
# This may be replaced when dependencies are built.
