file(REMOVE_RECURSE
  "CMakeFiles/presence_board.dir/presence_board.cpp.o"
  "CMakeFiles/presence_board.dir/presence_board.cpp.o.d"
  "presence_board"
  "presence_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presence_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
