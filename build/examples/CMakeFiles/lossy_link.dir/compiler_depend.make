# Empty compiler generated dependencies file for lossy_link.
# This may be replaced when dependencies are built.
