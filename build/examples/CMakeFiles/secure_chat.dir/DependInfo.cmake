
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_chat.cpp" "examples/CMakeFiles/secure_chat.dir/secure_chat.cpp.o" "gcc" "examples/CMakeFiles/secure_chat.dir/secure_chat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/enclaves_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/enclaves_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/enclaves_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/enclaves_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enclaves_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
