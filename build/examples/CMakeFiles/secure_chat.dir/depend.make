# Empty dependencies file for secure_chat.
# This may be replaced when dependencies are built.
